"""Tests for Plackett-Burman construction (repro.doe.pb).

The X = 8 design and its foldover are checked cell-for-cell against the
paper's Tables 2 and 3.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.doe import (
    next_multiple_of_four,
    pb_design,
    pb_design_size,
    pb_matrix,
    quadratic_residue_row,
)

#: Table 2 of the paper, verbatim.
PAPER_TABLE2 = [
    [+1, +1, +1, -1, +1, -1, -1],
    [-1, +1, +1, +1, -1, +1, -1],
    [-1, -1, +1, +1, +1, -1, +1],
    [+1, -1, -1, +1, +1, +1, -1],
    [-1, +1, -1, -1, +1, +1, +1],
    [+1, -1, +1, -1, -1, +1, +1],
    [+1, +1, -1, +1, -1, -1, +1],
    [-1, -1, -1, -1, -1, -1, -1],
]


class TestSizes:
    def test_next_multiple_of_four(self):
        assert next_multiple_of_four(7) == 8
        assert next_multiple_of_four(8) == 12
        assert next_multiple_of_four(43) == 44
        assert next_multiple_of_four(1) == 4

    def test_design_size_for_paper(self):
        # 41 parameters + need for dummies -> X = 44 (Section 4.1).
        assert pb_design_size(41) == 44

    def test_design_size_rejects_zero(self):
        with pytest.raises(ValueError):
            pb_design_size(0)

    def test_non_multiple_of_four_rejected(self):
        with pytest.raises(ValueError):
            pb_matrix(10)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            pb_matrix(0)


class TestPaperTable2:
    def test_exact_reproduction(self):
        """Our X = 8 matrix equals the paper's Table 2 cell-for-cell."""
        assert pb_matrix(8).tolist() == PAPER_TABLE2

    def test_first_row_is_published_generator(self):
        row = quadratic_residue_row(8)
        assert row.tolist() == [1, 1, 1, -1, 1, -1, -1]

    def test_rows_are_circular_right_shifts(self):
        m = pb_matrix(8)
        for i in range(1, 7):
            assert np.array_equal(m[i], np.roll(m[i - 1], 1))

    def test_last_row_all_minus(self):
        assert (pb_matrix(8)[-1] == -1).all()


class TestPaperTable3:
    def test_foldover_is_sign_reversed_original(self):
        base = pb_design(7)
        folded = base.foldover()
        assert np.array_equal(folded.matrix[:8], base.matrix)
        assert np.array_equal(folded.matrix[8:], -base.matrix)

    def test_foldover_run_count(self):
        # "a foldover PB design requires 2X simulations" (Section 2.1)
        assert pb_design(7, foldover=True).n_runs == 16
        assert pb_design(41, foldover=True).n_runs == 88


class TestQuadraticResidueRows:
    def test_x12_matches_published_row(self):
        # Published Plackett-Burman generator for N = 12.
        assert quadratic_residue_row(12).tolist() == \
            [1, 1, -1, 1, 1, 1, -1, -1, -1, 1, -1]

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            quadratic_residue_row(16)  # 15 is not prime
        with pytest.raises(ValueError):
            quadratic_residue_row(6)   # 5 = 1 mod 4

    def test_row_balance(self):
        # (q+1)/2 entries at +1 (including position 0), (q-1)/2 ... the
        # full design balances after the all-minus row is appended.
        for x in (8, 12, 20, 24, 44):
            row = quadratic_residue_row(x)
            assert row.sum() == 1  # +1 more high than low in the row


class TestAllConstructions:
    @pytest.mark.parametrize("x", [4, 8, 12, 16, 20, 24, 28, 32, 36, 40,
                                   44, 48, 64, 72, 80])
    def test_structural_invariants(self, x):
        m = pb_matrix(x)
        assert m.shape == (x, x - 1)
        assert (m.sum(axis=0) == 0).all()
        gram = m.astype(np.int64).T @ m.astype(np.int64)
        assert (gram - np.diag(np.diag(gram)) == 0).all()

    def test_x28_uses_gf27(self):
        """X = 28 has no prime q; GF(27) Paley construction covers it."""
        m = pb_matrix(28)
        assert m.shape == (28, 27)

    def test_unconstructible_size_raises(self):
        # 92: q = 91 = 7*13 is not a prime power; 46 is not X%4==0;
        # 92/2 = 46 not constructible either.
        with pytest.raises(ValueError):
            pb_matrix(92)


class TestPbDesignApi:
    def test_by_n_factors(self):
        d = pb_design(7)
        assert (d.n_runs, d.n_factors) == (8, 7)

    def test_by_names(self):
        d = pb_design(factor_names=["a", "b", "c"])
        assert d.n_runs == 4
        assert d.factor_names[:3] == ["a", "b", "c"]

    def test_by_runs(self):
        d = pb_design(runs=12)
        assert d.n_runs == 12
        assert d.n_factors == 11

    def test_explicit_runs_too_small(self):
        with pytest.raises(ValueError):
            pb_design(9, runs=8)

    def test_conflicting_names_count(self):
        with pytest.raises(ValueError):
            pb_design(3, factor_names=["a", "b"])

    def test_no_arguments(self):
        with pytest.raises(ValueError):
            pb_design()

    def test_paper_experiment_design(self):
        """41 named parameters -> X = 44 foldover with 2 dummies."""
        names = [f"param {i}" for i in range(41)]
        d = pb_design(factor_names=names, foldover=True)
        assert d.n_runs == 88
        assert d.n_factors == 43
        assert d.factor_names[-2:] == ["Dummy Factor #1", "Dummy Factor #2"]


@given(st.integers(1, 60))
@settings(max_examples=40, deadline=None)
def test_design_size_property(n):
    x = pb_design_size(n)
    assert x % 4 == 0
    assert x - 1 >= n          # room for every factor
    assert x - n <= 4          # no more than one size step of slack
