"""Tests for interaction analysis (repro.core.interactions)."""

import pytest

from repro.core import (
    PBExperiment,
    estimate_interactions,
    interaction_summary,
    interactions_smaller_than_mains,
    rank_parameters_from_result,
)
from repro.workloads import benchmark_trace

FACTORS = [
    "Reorder Buffer Entries",
    "L2 Cache Latency",
    "BPred Type",
    "Int ALUs",
    "Memory Latency First",
    "L1 D-Cache Size",
    "LSQ Entries",
]


@pytest.fixture(scope="module")
def result():
    traces = {
        "gzip": benchmark_trace("gzip", 2500),
        "mcf": benchmark_trace("mcf", 2500),
    }
    return PBExperiment(traces, parameter_names=FACTORS).run()


class TestEstimates:
    def test_all_pairs_all_benchmarks(self, result):
        pairs = estimate_interactions(result, FACTORS[:3])
        # C(3,2) pairs x 2 benchmarks
        assert len(pairs) == 6

    def test_sorted_by_magnitude(self, result):
        pairs = estimate_interactions(result, FACTORS[:4])
        mags = [abs(p.effect) for p in pairs]
        assert mags == sorted(mags, reverse=True)

    def test_benchmark_subset(self, result):
        pairs = estimate_interactions(result, FACTORS[:3],
                                      benchmarks=["gzip"])
        assert {p.benchmark for p in pairs} == {"gzip"}

    def test_relative_magnitude(self, result):
        for p in estimate_interactions(result, FACTORS[:3]):
            assert p.relative_magnitude >= 0.0


class TestPaperClaim:
    def test_interactions_smaller_than_mains_for_top_params(self, result):
        """§2.2: interactions among the significant parameters are
        small relative to the main effects — on our substrate too."""
        ranking = rank_parameters_from_result(result)
        top = ranking.top(3)
        assert interactions_smaller_than_mains(result, top,
                                               tolerance=1.0)

    def test_summary_text(self, result):
        text = interaction_summary(result, FACTORS[:3], top=4)
        assert "x" in text
        assert "effect" in text
