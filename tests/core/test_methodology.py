"""Tests for the four-step recommended workflow (repro.core.methodology)."""

import pytest

from repro.core import (
    SensitivityStudy,
    choose_final_values,
    sensitivity_analysis,
)
from repro.core.methodology import _is_real_parameter
from repro.cpu import MachineConfig
from repro.workloads import benchmark_trace


@pytest.fixture(scope="module")
def traces():
    return {"gzip": benchmark_trace("gzip", 2000)}


@pytest.fixture(scope="module")
def study(traces):
    return sensitivity_analysis(
        traces,
        ["Reorder Buffer Entries", "L2 Cache Latency"],
    )


class TestSensitivityAnalysis:
    def test_anova_per_benchmark(self, study, traces):
        assert set(study.anovas) == set(traces)
        assert study.factors == ("Reorder Buffer Entries",
                                 "L2 Cache Latency")

    def test_interactions_quantified(self, study):
        """The full factorial exposes the ROB x L2-latency interaction
        the PB screen could not quantify."""
        result = study.anovas["gzip"]
        row = result.row("Reorder Buffer Entries", "L2 Cache Latency")
        assert row.sum_of_squares >= 0.0

    def test_main_effects_dominate(self, study):
        variation = study.mean_variation()
        mains = (variation["Reorder Buffer Entries"]
                 + variation["L2 Cache Latency"])
        assert mains > 0.5

    def test_refuses_cost_explosion(self, traces):
        with pytest.raises(ValueError):
            sensitivity_analysis(traces, [f"f{i}" for i in range(7)])


class TestChooseFinalValues:
    def test_significant_factor_set_high(self, study, traces):
        from repro.core import rank_parameters_from_result
        from repro.core.experiment import PBExperiment

        ranking = rank_parameters_from_result(
            PBExperiment(
                traces,
                parameter_names=[
                    "Reorder Buffer Entries", "L2 Cache Latency",
                    "Int ALUs",
                ],
            ).run()
        )
        config = choose_final_values(ranking, study,
                                     variation_threshold=0.05)
        # ROB explains most variation -> set to its generous value.
        assert config.rob_entries == 64

    def test_threshold_one_keeps_base(self, study):
        from repro.core.paper_data import paper_table9_ranking

        config = choose_final_values(
            paper_table9_ranking(), study, variation_threshold=1.1
        )
        assert config == MachineConfig()


class TestHelpers:
    def test_real_parameter_detection(self):
        assert _is_real_parameter("Reorder Buffer Entries")
        assert not _is_real_parameter("Dummy Factor #1")


@pytest.mark.slow
class TestFullWorkflow:
    def test_recommended_workflow_runs(self):
        """Steps 1-4 execute end to end on a reduced problem."""
        from repro.core import recommended_workflow

        traces = {
            "gzip": benchmark_trace("gzip", 1200),
            "mcf": benchmark_trace("mcf", 1200),
        }
        result = recommended_workflow(traces, max_critical=2)
        assert 1 <= len(result.critical) <= 2
        assert all(_is_real_parameter(f) for f in result.critical)
        assert result.final_config.lsq_entries <= \
            result.final_config.rob_entries
        assert set(result.sensitivity.anovas) == set(traces)
