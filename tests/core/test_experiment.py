"""Tests for the PB experiment runner (repro.core.experiment).

Full 88-run experiments are exercised at reduced trace lengths and with
reduced parameter subsets to keep the suite fast.
"""

import pytest

from repro.core import (
    PBExperiment,
    PBExperimentResult,
    build_design,
    rank_parameters_from_result,
)
from repro.cpu import MachineConfig
from repro.cpu.params import PARAMETER_NAMES
from repro.workloads import benchmark_trace

#: A small but meaningful factor subset for fast experiments.
SUBSET = [
    "Reorder Buffer Entries",
    "LSQ Entries",
    "BPred Type",
    "Int ALUs",
    "L1 D-Cache Size",
    "L2 Cache Latency",
    "Memory Latency First",
]


@pytest.fixture(scope="module")
def traces():
    return {
        "gzip": benchmark_trace("gzip", 2500),
        "mcf": benchmark_trace("mcf", 2500),
    }


@pytest.fixture(scope="module")
def small_result(traces):
    return PBExperiment(traces, parameter_names=SUBSET).run()


class TestBuildDesign:
    def test_paper_design_shape(self):
        design = build_design()
        assert design.n_runs == 88
        assert design.n_factors == 43
        assert design.factor_names[:41] == list(PARAMETER_NAMES)
        assert design.factor_names[41:] == [
            "Dummy Factor #1", "Dummy Factor #2",
        ]

    def test_without_foldover(self):
        assert build_design(foldover=False).n_runs == 44

    def test_subset_design(self):
        design = build_design(SUBSET)
        assert design.n_runs == 16   # X = 8, foldover
        assert design.n_factors == 7


class TestPBExperiment:
    def test_requires_traces(self):
        with pytest.raises(ValueError):
            PBExperiment({})

    def test_configs_match_rows(self, traces):
        exp = PBExperiment(traces, parameter_names=SUBSET)
        configs = exp.configs()
        assert len(configs) == exp.design.n_runs
        # First row of the X=8 design: ROB high (+1) -> 64 entries.
        assert configs[0].rob_entries == 64
        # Last row of the base half: all low.
        assert configs[7].rob_entries == 8

    def test_result_structure(self, small_result, traces):
        assert isinstance(small_result, PBExperimentResult)
        assert set(small_result.benchmarks) == set(traces)
        for rows in small_result.responses.values():
            assert len(rows) == 16
            assert all(c > 0 for c in rows)

    def test_effects_computed(self, small_result):
        for table in small_result.effects.values():
            assert len(table.factor_names) == 7

    def test_ranks_are_permutations(self, small_result):
        for ranks in small_result.ranks().values():
            assert sorted(ranks.values()) == list(range(1, 8))

    def test_progress_callback(self, traces):
        seen = []
        PBExperiment(
            traces, parameter_names=SUBSET,
            progress=lambda done, total: seen.append((done, total)),
        ).run()
        assert seen[0] == (1, 32)
        assert seen[-1] == (32, 32)

    def test_deterministic(self, traces, small_result):
        again = PBExperiment(traces, parameter_names=SUBSET).run()
        assert again.responses == small_result.responses

    def test_base_config_respected(self, traces):
        exp = PBExperiment(
            traces, parameter_names=SUBSET,
            base_config=MachineConfig(memory_ports=4),
        )
        assert all(c.memory_ports == 4 for c in exp.configs())


class TestExperimentPhysics:
    """The experiment must reflect real machine behaviour."""

    def test_rob_significant_for_all(self, small_result):
        ranking = rank_parameters_from_result(small_result)
        for bench in small_result.benchmarks:
            assert ranking.rank_of("Reorder Buffer Entries", bench) <= 3

    def test_memory_latency_matters_more_for_mcf(self, small_result):
        ranking = rank_parameters_from_result(small_result)
        assert (
            ranking.rank_of("Memory Latency First", "mcf")
            <= ranking.rank_of("Memory Latency First", "gzip")
        )

    def test_responses_vary_across_configs(self, small_result):
        for rows in small_result.responses.values():
            assert max(rows) > 1.2 * min(rows)
