"""Tests for replicated PB experiments (repro.core.replication)."""

import numpy as np
import pytest

from repro.core import (
    rank_parameters_from_result,
    replicated_suite,
    run_replicated,
)

FACTORS = [
    "Reorder Buffer Entries", "L2 Cache Latency", "BPred Type",
    "Int ALUs", "I-TLB Size", "Return Address Stack Entries",
    "Memory Ports",
]


@pytest.fixture(scope="module")
def result():
    traces = replicated_suite(["gzip", "mcf"], 1200, 3)
    return run_replicated(traces, parameter_names=FACTORS)


class TestReplicatedSuite:
    def test_counts(self):
        traces = replicated_suite(["gzip"], 800, 3)
        assert len(traces["gzip"]) == 3
        assert all(len(t) == 800 for t in traces["gzip"])

    def test_replicates_differ(self):
        traces = replicated_suite(["gzip"], 800, 2)
        a, b = traces["gzip"]
        assert not np.array_equal(a.mem_addr, b.mem_addr)

    def test_replicates_share_static_program(self):
        """Same code layout: identical PC sets (same static slots)."""
        traces = replicated_suite(["gzip"], 3000, 2)
        a, b = traces["gzip"]
        shared = set(np.unique(a.pc)) & set(np.unique(b.pc))
        assert len(shared) > 0.5 * len(np.unique(a.pc))

    def test_minimum_replicates(self):
        with pytest.raises(ValueError):
            replicated_suite(["gzip"], 800, 1)


class TestInference:
    def test_real_factors_significant(self, result):
        for bench in ("gzip", "mcf"):
            significant = result.significant_factors(bench)
            assert "Reorder Buffer Entries" in significant, bench

    def test_noise_factors_not_strongly_significant(self, result):
        """The RAS (untouched by these traces' shallow call depth)
        should not beat the real factors."""
        for bench in ("gzip", "mcf"):
            inf = result.inference[bench]
            assert abs(inf["Return Address Stack Entries"].t_statistic) \
                < abs(inf["Reorder Buffer Entries"].t_statistic)

    def test_p_values_in_range(self, result):
        for per_factor in result.inference.values():
            for inf in per_factor.values():
                assert 0.0 <= inf.p_value <= 1.0

    def test_mean_result_usable_downstream(self, result):
        ranking = rank_parameters_from_result(result.mean_result)
        assert "Reorder Buffer Entries" in ranking.top(3)

    def test_table_renders(self, result):
        text = result.table("gzip", top=4)
        assert "replicated effect estimates" in text
        assert "t=" in text

    def test_mismatched_replicate_counts_rejected(self):
        traces = replicated_suite(["gzip", "mcf"], 600, 2)
        traces["mcf"] = traces["mcf"][:1]
        with pytest.raises(ValueError):
            run_replicated(traces, parameter_names=FACTORS)

    def test_single_replicate_rejected(self):
        traces = {"gzip": replicated_suite(["gzip"], 600, 2)["gzip"][:1]}
        with pytest.raises(ValueError):
            run_replicated(traces, parameter_names=FACTORS)
