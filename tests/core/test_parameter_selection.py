"""Tests for parameter ranking (repro.core.parameter_selection)."""

import numpy as np
import pytest

from repro.core import rank_parameters, ranking_from_rank_table
from repro.doe import compute_effects, pb_design


def make_effects(responses_by_bench, factor_names):
    design = pb_design(factor_names=factor_names)
    return {
        bench: compute_effects(design, y)
        for bench, y in responses_by_bench.items()
    }


class TestRankParameters:
    def test_sorted_by_sum(self):
        rng = np.random.default_rng(0)
        effects = make_effects(
            {f"b{i}": rng.normal(size=8) for i in range(5)},
            list("ABCDEFG"),
        )
        ranking = rank_parameters(effects)
        assert list(ranking.sums) == sorted(ranking.sums)

    def test_ranks_grid_consistent(self):
        rng = np.random.default_rng(1)
        effects = make_effects(
            {"x": rng.normal(size=8), "y": rng.normal(size=8)},
            list("ABCDEFG"),
        )
        ranking = rank_parameters(effects)
        for j, bench in enumerate(ranking.benchmarks):
            per_bench = effects[bench].ranks()
            for i, factor in enumerate(ranking.factors):
                assert ranking.ranks[i, j] == per_bench[factor]

    def test_rank_vector(self):
        rng = np.random.default_rng(2)
        effects = make_effects({"x": rng.normal(size=8)}, list("ABCDEFG"))
        ranking = rank_parameters(effects)
        vec = ranking.rank_vector("x")
        assert sorted(vec.values()) == list(range(1, 8))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            rank_parameters({})

    def test_dominant_factor_first(self):
        design = pb_design(factor_names=list("ABCDEFG"))
        y = 100.0 * design.column("D").astype(float)
        effects = {"only": compute_effects(design, y)}
        ranking = rank_parameters(effects)
        assert ranking.factors[0] == "D"
        assert ranking.sum_of("D") == 1

    def test_top(self):
        rng = np.random.default_rng(3)
        effects = make_effects({"x": rng.normal(size=8)}, list("ABCDEFG"))
        ranking = rank_parameters(effects)
        assert ranking.top(3) == list(ranking.factors[:3])


class TestRankingFromRankTable:
    def test_roundtrip(self):
        factors = ["p", "q", "r"]
        benchmarks = ["a", "b"]
        grid = np.array([[1, 2], [3, 1], [2, 3]])
        ranking = ranking_from_rank_table(factors, benchmarks, grid)
        assert ranking.rank_of("p", "a") == 1
        assert ranking.rank_of("r", "b") == 3
        # q has sum 4, p has 3, r has 5 -> sorted p, q, r
        assert list(ranking.factors) == ["p", "q", "r"]
        assert list(ranking.sums) == [3, 4, 5]

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            ranking_from_rank_table(["p"], ["a", "b"], np.array([[1]]))

    def test_tie_stable_order(self):
        grid = np.array([[1, 2], [2, 1]])
        ranking = ranking_from_rank_table(["p", "q"], ["a", "b"], grid)
        assert list(ranking.factors) == ["p", "q"]  # original order
