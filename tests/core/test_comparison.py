"""Tests for ranking comparison utilities (repro.core.comparison)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import compare_rankings, ranking_from_rank_table, spearman
from repro.core.paper_data import paper_table9_ranking, paper_table12_ranking


class TestSpearman:
    def test_perfect_agreement(self):
        assert spearman([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)

    def test_perfect_disagreement(self):
        assert spearman([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_monotone_transform_invariant(self):
        x = [3.0, 1.0, 4.0, 1.5, 9.0]
        y = [v ** 3 for v in x]
        assert spearman(x, y) == pytest.approx(1.0)

    def test_constant_input(self):
        assert spearman([1, 1, 1], [1, 2, 3]) == pytest.approx(
            spearman([1, 2, 3], [1, 1, 1])
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            spearman([1], [1])
        with pytest.raises(ValueError):
            spearman([1, 2], [1, 2, 3])


def tiny_ranking(grid, benchmarks=("a", "b")):
    factors = [f"f{i}" for i in range(len(grid))]
    return ranking_from_rank_table(factors, list(benchmarks),
                                   np.asarray(grid))


class TestCompareRankings:
    def test_self_comparison_is_perfect(self):
        r = paper_table9_ranking()
        cmp = compare_rankings(r, r)
        assert cmp.overall_spearman == pytest.approx(1.0)
        assert cmp.top10_overlap == 10
        assert cmp.significant_overlap == pytest.approx(1.0)
        assert all(v == pytest.approx(1.0)
                   for v in cmp.per_benchmark_spearman.values())

    def test_paper_table9_vs_table12_strongly_correlated(self):
        """The paper's own before/after rankings agree strongly —
        which is its 'same parameters stay significant' conclusion."""
        cmp = compare_rankings(paper_table9_ranking(),
                               paper_table12_ranking())
        assert cmp.overall_spearman > 0.95
        assert cmp.top10_overlap >= 9

    def test_factor_mismatch_rejected(self):
        a = tiny_ranking([[1, 1], [2, 2]])
        b = ranking_from_rank_table(["x", "y"], ["a", "b"],
                                    np.array([[1, 1], [2, 2]]))
        with pytest.raises(ValueError):
            compare_rankings(a, b)

    def test_disjoint_benchmarks_skip_fingerprints(self):
        a = tiny_ranking([[1, 1], [2, 2]], benchmarks=("a", "b"))
        b = tiny_ranking([[1, 1], [2, 2]], benchmarks=("c", "d"))
        cmp = compare_rankings(a, b)
        assert cmp.per_benchmark_spearman == {}

    def test_summary_text(self):
        cmp = compare_rankings(paper_table9_ranking(),
                               paper_table12_ranking())
        text = cmp.summary()
        assert "Spearman" in text
        assert "top-10 overlap" in text


@given(st.permutations(list(range(8))))
@settings(max_examples=30, deadline=None)
def test_spearman_bounds(perm):
    """Spearman always lies in [-1, 1]."""
    rho = spearman(list(range(8)), list(perm))
    assert -1.0 - 1e-9 <= rho <= 1.0 + 1e-9
