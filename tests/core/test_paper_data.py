"""Exact validation against the paper's published numbers.

These tests exercise the classification and enhancement pipelines on
the paper's own Table 9/12 rank data and require bit-level agreement
with Tables 10 and 11 and with the stated conclusions of Sections
4.1-4.3.
"""

import math

import numpy as np
import pytest

from repro.core import (
    EnhancementAnalysis,
    PAPER_SIMILARITY_THRESHOLD,
    benchmark_distance,
    distance_matrix,
    group_benchmarks,
    representatives,
    single_linkage,
)
from repro.core.paper_data import (
    BENCHMARKS,
    TABLE9_PUBLISHED_SUMS,
    TABLE9_RANKS,
    TABLE10_DISTANCES,
    TABLE11_GROUPS,
    TABLE12_PUBLISHED_SUMS,
    TABLE12_RANKS,
    paper_table9_ranking,
    paper_table12_ranking,
)


class TestTranscriptionIntegrity:
    def test_table9_row_sums_match_published(self):
        for factor, ranks in TABLE9_RANKS.items():
            assert sum(ranks) == TABLE9_PUBLISHED_SUMS[factor], factor

    def test_table12_row_sums_match_published(self):
        for factor, ranks in TABLE12_RANKS.items():
            assert sum(ranks) == TABLE12_PUBLISHED_SUMS[factor], factor

    def test_each_benchmark_column_is_permutation(self):
        for table in (TABLE9_RANKS, TABLE12_RANKS):
            grid = np.array(list(table.values()))
            for j in range(len(BENCHMARKS)):
                assert sorted(grid[:, j]) == list(range(1, 44))

    def test_43_factors_13_benchmarks(self):
        assert len(TABLE9_RANKS) == 43
        assert len(TABLE12_RANKS) == 43
        assert len(BENCHMARKS) == 13

    def test_same_factor_sets(self):
        assert set(TABLE9_RANKS) == set(TABLE12_RANKS)


class TestTable9Structure:
    def test_row_order_by_sum(self):
        r = paper_table9_ranking()
        assert list(r.sums) == sorted(r.sums)
        assert r.factors[0] == "Reorder Buffer Entries"
        assert r.factors[1] == "L2 Cache Latency"

    def test_top_ten_significance_gap(self):
        """Section 4.1: 'only the first ten parameters are significant'
        — the gap rule finds exactly the paper's cut."""
        r = paper_table9_ranking()
        significant = r.significant_factors()
        assert len(significant) == 10
        assert significant == [
            "Reorder Buffer Entries", "L2 Cache Latency", "BPred Type",
            "Int ALUs", "L1 D-Cache Latency", "L1 I-Cache Size",
            "L2 Cache Size", "L1 I-Cache Block Size",
            "Memory Latency First", "LSQ Entries",
        ]

    def test_dummy_factors_insignificant(self):
        r = paper_table9_ranking()
        order = list(r.factors)
        assert order.index("Dummy Factor #1") >= 40
        assert order.index("Dummy Factor #2") >= 30

    def test_rank_lookup(self):
        r = paper_table9_ranking()
        assert r.rank_of("Reorder Buffer Entries", "gzip") == 1
        assert r.rank_of("FP Square Root Latency", "art") == 5  # §4.1 note


class TestTable10Reproduction:
    def test_full_distance_matrix(self):
        """Every entry of Table 10 is recomputed to 0.05 absolute."""
        names, dist = distance_matrix(paper_table9_ranking())
        index = [names.index(b) for b in BENCHMARKS]
        for i, bi in enumerate(BENCHMARKS):
            for j, bj in enumerate(BENCHMARKS):
                recomputed = dist[index[i], index[j]]
                assert recomputed == pytest.approx(
                    TABLE10_DISTANCES[i][j], abs=0.05
                ), (bi, bj)

    def test_worked_example_distance(self):
        """Section 4.2's worked example: d(gzip, vpr-Place) = 89.8."""
        d = benchmark_distance(paper_table9_ranking(), "gzip", "vpr-Place")
        assert round(d, 1) == 89.8

    def test_gzip_mesa_similar(self):
        d = benchmark_distance(paper_table9_ranking(), "gzip", "mesa")
        assert d < PAPER_SIMILARITY_THRESHOLD

    def test_threshold_value(self):
        assert PAPER_SIMILARITY_THRESHOLD == pytest.approx(
            math.sqrt(4000)
        )

    def test_matrix_metric_axioms(self):
        names, dist = distance_matrix(paper_table9_ranking())
        assert np.allclose(dist, dist.T)
        assert np.allclose(np.diag(dist), 0.0)
        n = len(names)
        for i in range(n):
            for j in range(n):
                for k in range(0, n, 3):
                    assert dist[i, j] <= dist[i, k] + dist[k, j] + 1e-9


class TestTable11Reproduction:
    def test_exact_groups(self):
        groups = group_benchmarks(paper_table9_ranking())
        assert [tuple(g) for g in groups] == [tuple(g)
                                              for g in TABLE11_GROUPS]

    def test_zero_threshold_all_singletons(self):
        groups = group_benchmarks(paper_table9_ranking(), threshold=0.0)
        assert len(groups) == 13

    def test_huge_threshold_one_group(self):
        groups = group_benchmarks(paper_table9_ranking(), threshold=1e6)
        assert len(groups) == 1

    def test_representatives_one_per_group(self):
        groups = group_benchmarks(paper_table9_ranking())
        reps = representatives(groups)
        assert len(reps) == len(groups)
        assert reps[0] == "gzip"

    def test_representatives_weighted(self):
        from repro.workloads import PAPER_INSTRUCTION_COUNTS_M

        groups = group_benchmarks(paper_table9_ranking())
        reps = representatives(groups, PAPER_INSTRUCTION_COUNTS_M)
        # mesa (1217.9M) is cheaper to simulate than gzip (1364.2M).
        assert "mesa" in reps

    def test_single_linkage_consistent_with_groups(self):
        """Cutting the dendrogram at the paper threshold yields the
        same partition as the connected-component grouping."""
        ranking = paper_table9_ranking()
        steps = single_linkage(ranking)
        n_groups = 13 - sum(
            1 for s in steps if s.distance < PAPER_SIMILARITY_THRESHOLD
        )
        assert n_groups == len(TABLE11_GROUPS)

    def test_single_linkage_distances_monotone_enough(self):
        steps = single_linkage(paper_table9_ranking())
        assert len(steps) == 12
        assert steps[0].distance == pytest.approx(35.2, abs=0.05)


class TestTable12Conclusions:
    def test_significant_set_stable(self):
        """Section 4.3, first conclusion: the same parameters stay
        significant after instruction precomputation."""
        analysis = EnhancementAnalysis(
            paper_table9_ranking(), paper_table12_ranking()
        )
        assert analysis.significant_set_stable()

    def test_int_alus_biggest_shift(self):
        """Section 4.3, second conclusion: Int ALUs moves the most
        among the significant parameters (118 -> 137)."""
        analysis = EnhancementAnalysis(
            paper_table9_ranking(), paper_table12_ranking()
        )
        shift = analysis.biggest_shift_among_significant()
        assert shift.factor == "Int ALUs"
        assert shift.sum_before == 118
        assert shift.sum_after == 137
        assert shift.shift == 19

    def test_rob_and_l2_unmoved(self):
        analysis = EnhancementAnalysis(
            paper_table9_ranking(), paper_table12_ranking()
        )
        shifts = {s.factor: s.shift for s in analysis.shifts()}
        assert shifts["Reorder Buffer Entries"] == 0
        assert shifts["L2 Cache Latency"] == 0
