"""Tests for enhancement analysis (repro.core.enhancement).

A reduced-size §4.3 study (instruction precomputation, subset of
factors, short traces) must reproduce the paper's qualitative
conclusion: the Int-ALU parameter loses significance.
"""

import numpy as np
import pytest

from repro.core import EnhancementAnalysis, analyze_enhancement
from repro.core.parameter_selection import ranking_from_rank_table
from repro.cpu import build_precompute_table
from repro.workloads import benchmark_trace


def ranking_of(grid, factors, benchmarks):
    return ranking_from_rank_table(factors, benchmarks, np.asarray(grid))


class TestFactorShift:
    def test_shift_sign_convention(self):
        before = ranking_of([[1], [2], [3]], ["a", "b", "c"], ["x"])
        after = ranking_of([[3], [2], [1]], ["a", "b", "c"], ["x"])
        analysis = EnhancementAnalysis(before, after)
        shifts = {s.factor: s for s in analysis.shifts()}
        assert shifts["a"].shift == +2    # a became less significant
        assert shifts["c"].shift == -2
        assert shifts["b"].shift == 0

    def test_shifts_sorted_by_magnitude(self):
        before = ranking_of([[1], [2], [3], [4]], list("abcd"), ["x"])
        after = ranking_of([[4], [2], [3], [1]], list("abcd"), ["x"])
        shifts = EnhancementAnalysis(before, after).shifts()
        assert abs(shifts[0].shift) >= abs(shifts[-1].shift)


class TestStability:
    def test_stable_when_unchanged(self):
        r = ranking_of([[1], [2], [3], [30]], list("abcd"), ["x"])
        assert EnhancementAnalysis(r, r).significant_set_stable()

    def test_unstable_when_set_changes(self):
        before = ranking_of([[1], [2], [30], [31]], list("abcd"), ["x"])
        after = ranking_of([[1], [30], [2], [31]], list("abcd"), ["x"])
        assert not EnhancementAnalysis(before, after) \
            .significant_set_stable()


@pytest.mark.slow
class TestEndToEnd:
    """A reduced instruction-precomputation study on the simulator."""

    FACTORS = [
        "Reorder Buffer Entries", "Int ALUs", "L2 Cache Latency",
        "BPred Type", "L1 D-Cache Size", "Memory Latency First",
        "Int ALU Latencies",
    ]

    @pytest.fixture(scope="class")
    def study(self):
        traces = {
            name: benchmark_trace(name, 4000)
            for name in ("gzip", "bzip2", "vortex")
        }
        from repro.core.enhancement import analyze_enhancement
        from repro.core.experiment import PBExperiment
        from repro.core.parameter_selection import (
            rank_parameters_from_result,
        )

        tables = {
            name: build_precompute_table(trace, 128)
            for name, trace in traces.items()
        }
        before = PBExperiment(traces, parameter_names=self.FACTORS).run()
        after = PBExperiment(
            traces, parameter_names=self.FACTORS,
            precompute_tables=tables,
        ).run()
        return EnhancementAnalysis(
            rank_parameters_from_result(before),
            rank_parameters_from_result(after),
        ), before, after

    def test_enhancement_speeds_up_runs(self, study):
        _, before, after = study
        for bench in before.benchmarks:
            total_before = sum(before.responses[bench])
            total_after = sum(after.responses[bench])
            assert total_after < total_before, bench

    def test_int_alus_lose_significance(self, study):
        """The paper's Table 12 observation on our substrate."""
        analysis, _, _ = study
        shifts = {s.factor: s.shift for s in analysis.shifts()}
        assert shifts["Int ALUs"] > 0

    def test_rob_stays_dominant(self, study):
        analysis, _, _ = study
        assert analysis.after.rank_of(
            "Reorder Buffer Entries", "gzip") <= 3


class TestAnalyzeEnhancementApi:
    def test_end_to_end_on_subset(self):
        """analyze_enhancement builds tables by default and returns
        both raw experiments alongside the analysis."""
        traces = {"gzip": benchmark_trace("gzip", 1500)}
        factors = ["Reorder Buffer Entries", "Int ALUs", "BPred Type"]
        analysis, before, after = analyze_enhancement(
            traces, parameter_names=factors,
        )
        assert isinstance(analysis, EnhancementAnalysis)
        assert before.design.n_runs == 8   # X = 4, foldover
        assert set(before.responses) == {"gzip"}
        assert sum(after.responses["gzip"]) < sum(before.responses["gzip"])

    def test_explicit_tables_respected(self):
        traces = {"gzip": benchmark_trace("gzip", 1500)}
        factors = ["Reorder Buffer Entries", "Int ALUs", "BPred Type"]
        empty_tables = {"gzip": frozenset()}
        analysis, before, after = analyze_enhancement(
            traces, parameter_names=factors,
            precompute_tables=empty_tables,
        )
        # An empty precomputation table cannot change any response.
        assert before.responses == after.responses
