"""Generic tests for benchmark classification (repro.core.classification).

Exact reproduction of Tables 10/11 lives in test_paper_data.py; these
tests cover the machinery on synthetic rank data and property checks.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    benchmark_distance,
    distance_matrix,
    group_benchmarks,
    rank_vectors,
    ranking_from_rank_table,
    single_linkage,
)


def ranking_of(grid, benchmarks=None):
    grid = np.asarray(grid)
    factors = [f"f{i}" for i in range(grid.shape[0])]
    benchmarks = benchmarks or [f"b{j}" for j in range(grid.shape[1])]
    return ranking_from_rank_table(factors, benchmarks, grid)


class TestDistances:
    def test_identical_benchmarks_distance_zero(self):
        r = ranking_of([[1, 1], [2, 2], [3, 3]])
        assert benchmark_distance(r, "b0", "b1") == 0.0

    def test_hand_computed(self):
        # Vectors (1,2,3) vs (3,2,1): sqrt(4 + 0 + 4)
        r = ranking_of([[1, 3], [2, 2], [3, 1]])
        assert benchmark_distance(r, "b0", "b1") == pytest.approx(
            np.sqrt(8.0)
        )

    def test_matrix_symmetric_zero_diagonal(self):
        rng = np.random.default_rng(0)
        grid = np.stack(
            [rng.permutation(np.arange(1, 9)) for _ in range(5)]
        ).T  # 8 factors x 5 benchmarks
        r = ranking_of(grid)
        names, dist = distance_matrix(r)
        assert np.allclose(dist, dist.T)
        assert np.allclose(np.diag(dist), 0)

    def test_rank_vectors_keyed_by_benchmark(self):
        r = ranking_of([[1, 2], [2, 1]])
        vectors = rank_vectors(r)
        assert set(vectors) == {"b0", "b1"}


class TestGrouping:
    def test_transitive_closure(self):
        """a~b and b~c merge all three even if a and c are far."""
        #                 a  b  c
        grid = np.array([[1, 1, 2],
                         [2, 2, 1],
                         [3, 3, 3],
                         [4, 4, 4]])
        # a == b, c differs by sqrt(2) in two coordinates
        r = ranking_of(grid, ["a", "b", "c"])
        groups = group_benchmarks(r, threshold=2.0)
        assert groups == [["a", "b", "c"]]

    def test_groups_partition(self):
        rng = np.random.default_rng(5)
        grid = np.stack(
            [rng.permutation(np.arange(1, 11)) for _ in range(6)]
        ).T
        r = ranking_of(grid)
        groups = group_benchmarks(r, threshold=8.0)
        flat = [b for g in groups for b in g]
        assert sorted(flat) == sorted(r.benchmarks)
        assert len(flat) == len(set(flat))

    def test_order_by_first_appearance(self):
        grid = np.array([[1, 5, 1], [2, 4, 2], [3, 3, 3], [4, 2, 4],
                         [5, 1, 5]])
        r = ranking_of(grid, ["x", "y", "z"])
        groups = group_benchmarks(r, threshold=1.0)
        assert groups[0][0] == "x"


class TestSingleLinkage:
    def test_merge_count(self):
        rng = np.random.default_rng(7)
        grid = np.stack(
            [rng.permutation(np.arange(1, 8)) for _ in range(5)]
        ).T
        r = ranking_of(grid)
        steps = single_linkage(r)
        assert len(steps) == 4   # n - 1 merges

    def test_final_merge_contains_all(self):
        rng = np.random.default_rng(8)
        grid = np.stack(
            [rng.permutation(np.arange(1, 8)) for _ in range(4)]
        ).T
        r = ranking_of(grid)
        steps = single_linkage(r)
        assert set(steps[-1].merged) == set(r.benchmarks)

    def test_distances_non_decreasing(self):
        """Single linkage merge distances are monotone."""
        rng = np.random.default_rng(9)
        grid = np.stack(
            [rng.permutation(np.arange(1, 13)) for _ in range(6)]
        ).T
        r = ranking_of(grid)
        steps = single_linkage(r)
        distances = [s.distance for s in steps]
        assert distances == sorted(distances)


@given(st.integers(0, 10_000))
@settings(max_examples=20, deadline=None)
def test_grouping_threshold_monotonicity(seed):
    """Raising the threshold never increases the number of groups."""
    rng = np.random.default_rng(seed)
    grid = np.stack(
        [rng.permutation(np.arange(1, 9)) for _ in range(5)]
    ).T
    r = ranking_of(grid)
    sizes = [
        len(group_benchmarks(r, threshold=t))
        for t in (0.0, 2.0, 5.0, 10.0, 100.0)
    ]
    assert sizes == sorted(sizes, reverse=True)
