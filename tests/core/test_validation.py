"""Tests for the one-call replication pipeline (repro.core.validation)."""

import pytest

from repro.core import replicate
from repro.workloads import benchmark_suite


@pytest.mark.slow
class TestReplicate:
    @pytest.fixture(scope="class")
    def outcome(self):
        # A fast replication: 4 benchmarks, short traces.
        traces = benchmark_suite(
            length=2000, names=["gzip", "mcf", "twolf", "bzip2"]
        )
        return replicate(traces)

    def test_headline_checks_mostly_pass(self, outcome):
        checks = outcome.headline_checks()
        # The hard physical conclusions must hold even at tiny scale.
        assert checks["rob_in_top3"] or checks["l2_latency_in_top3"]
        assert checks["precomputation_speeds_up_every_benchmark"]
        assert checks["int_alus_relieved_by_precomputation"]

    def test_comparisons_positive(self, outcome):
        assert outcome.table9_vs_paper.overall_spearman > 0.0
        assert outcome.table9_vs_paper.top10_overlap >= 3

    def test_report_renders(self, outcome):
        report = outcome.report()
        assert "# Replication report" in report
        assert "PASS" in report
        assert "| Parameter |" in report

    def test_artifacts_consistent(self, outcome):
        assert outcome.table9.benchmarks == outcome.table12.benchmarks
        assert outcome.enhancement.before is outcome.table9
        assert outcome.enhancement.after is outcome.table12
