"""Tests for sweeps and iterative refinement (repro.core.sweep)."""

import pytest

from repro.core import SweepResult, iterative_refinement, sweep
from repro.cpu import MachineConfig
from repro.workloads import benchmark_trace


@pytest.fixture(scope="module")
def traces():
    return {"gzip": benchmark_trace("gzip", 1500),
            "mcf": benchmark_trace("mcf", 1500)}


class TestSweep:
    def test_shape(self, traces):
        result = sweep(traces, "rob_entries", [16, 24, 32])
        assert result.values == (16, 24, 32)
        assert set(result.cycles) == set(traces)
        assert all(len(v) == 3 for v in result.cycles.values())

    def test_monotone_resource(self, traces):
        result = sweep(
            traces, "rob_entries", [8, 16, 32],
            linked={8: {"lsq_entries": 8}},
        )
        totals = result.total_cycles()
        assert totals[0] >= totals[-1]
        assert result.best_value() == 32

    def test_linked_overrides(self, traces):
        result = sweep(
            traces, "rob_entries", [4, 32],
            linked={4: {"lsq_entries": 4}},
        )
        assert result.best_value() == 32

    def test_empty_values(self, traces):
        with pytest.raises(ValueError):
            sweep(traces, "rob_entries", [])

    def test_table_renders(self, traces):
        text = sweep(traces, "l2_latency", [5, 20]).table()
        assert "sweep of l2_latency" in text
        assert "gzip" in text


class TestIterativeRefinement:
    def test_converges_to_generous_values(self, traces):
        result = iterative_refinement(
            traces,
            {
                "l2_latency": [20, 12, 5],
                "int_alus": [1, 2, 4],
            },
            max_rounds=3,
        )
        chosen = result.chosen_values()
        assert chosen["l2_latency"] == 5
        assert chosen["int_alus"] in (2, 4)
        assert result.final_config.l2_latency == 5
        assert result.rounds <= 3

    def test_records_every_step(self, traces):
        result = iterative_refinement(
            traces, {"l2_latency": [20, 5]}, max_rounds=2,
        )
        assert len(result.steps) >= 1
        assert result.steps[0].sweep.field_name == "l2_latency"

    def test_requires_parameters(self, traces):
        with pytest.raises(ValueError):
            iterative_refinement(traces, {})


class TestTableLayout:
    def test_wide_values_stay_aligned(self, traces):
        """Values longer than 9 characters must not shear the table:
        the value column is sized to the widest entry."""
        result = sweep(
            traces, "l1d_size", [4096, 131072],
            linked={131072: {"l1d_assoc": 8}},
        )
        wide = SweepResult(
            field_name="cache_geometry",
            values=("(131072, 8, 64)", "(4096, 1, 16)"),
            cycles=result.cycles,
        )
        lines = wide.table().splitlines()
        header, rows = lines[1], lines[2:]
        assert all(len(row) == len(header) for row in rows)
        width = max(len(str(v)) for v in wide.values)
        for row, value in zip(rows, wide.values):
            assert row.startswith(f"  {str(value):<{width}s}  ")

    def test_narrow_values_stay_aligned(self, traces):
        result = sweep(traces, "l2_latency", [5, 20])
        lines = result.table().splitlines()
        header, rows = lines[1], lines[2:]
        assert all(len(row) == len(header) for row in rows)
