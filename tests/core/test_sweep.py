"""Tests for sweeps and iterative refinement (repro.core.sweep)."""

import pytest

from repro.core import iterative_refinement, sweep
from repro.cpu import MachineConfig
from repro.workloads import benchmark_trace


@pytest.fixture(scope="module")
def traces():
    return {"gzip": benchmark_trace("gzip", 1500),
            "mcf": benchmark_trace("mcf", 1500)}


class TestSweep:
    def test_shape(self, traces):
        result = sweep(traces, "rob_entries", [16, 24, 32])
        assert result.values == (16, 24, 32)
        assert set(result.cycles) == set(traces)
        assert all(len(v) == 3 for v in result.cycles.values())

    def test_monotone_resource(self, traces):
        result = sweep(
            traces, "rob_entries", [8, 16, 32],
            linked={8: {"lsq_entries": 8}},
        )
        totals = result.total_cycles()
        assert totals[0] >= totals[-1]
        assert result.best_value() == 32

    def test_linked_overrides(self, traces):
        result = sweep(
            traces, "rob_entries", [4, 32],
            linked={4: {"lsq_entries": 4}},
        )
        assert result.best_value() == 32

    def test_empty_values(self, traces):
        with pytest.raises(ValueError):
            sweep(traces, "rob_entries", [])

    def test_table_renders(self, traces):
        text = sweep(traces, "l2_latency", [5, 20]).table()
        assert "sweep of l2_latency" in text
        assert "gzip" in text


class TestIterativeRefinement:
    def test_converges_to_generous_values(self, traces):
        result = iterative_refinement(
            traces,
            {
                "l2_latency": [20, 12, 5],
                "int_alus": [1, 2, 4],
            },
            max_rounds=3,
        )
        chosen = result.chosen_values()
        assert chosen["l2_latency"] == 5
        assert chosen["int_alus"] in (2, 4)
        assert result.final_config.l2_latency == 5
        assert result.rounds <= 3

    def test_records_every_step(self, traces):
        result = iterative_refinement(
            traces, {"l2_latency": [20, 5]}, max_rounds=2,
        )
        assert len(result.steps) >= 1
        assert result.steps[0].sweep.field_name == "l2_latency"

    def test_requires_parameters(self, traces):
        with pytest.raises(ValueError):
            iterative_refinement(traces, {})
