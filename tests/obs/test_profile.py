"""Per-phase profiling (repro.obs.profile): capture artifacts, the
nesting depth guard, and guarded degradation."""

import pstats
import warnings

from repro.obs.profile import PhaseProfiler, collapsed_stacks


def busy_work(n=2000):
    return sum(x * x for x in range(n))


class TestCapture:
    def test_phase_writes_both_artifacts(self, tmp_path):
        profiler = PhaseProfiler(tmp_path / "prof")
        with profiler.phase("pb-design"):
            busy_work()
        stats_path, collapsed_path = profiler.captures["pb-design"]
        assert stats_path.endswith("pb-design.pstats")
        assert collapsed_path.endswith("pb-design.collapsed.txt")
        stats = pstats.Stats(stats_path)
        assert stats.total_calls > 0

    def test_collapsed_lines_are_edges_with_counts(self, tmp_path):
        profiler = PhaseProfiler(tmp_path / "prof")
        with profiler.phase("grid"):
            busy_work()
        text = (tmp_path / "prof" / "grid.collapsed.txt").read_text()
        lines = text.strip().splitlines()
        assert lines == sorted(lines)
        for line in lines:
            frames, count = line.rsplit(" ", 1)
            assert int(count) >= 1
            assert frames.count(";") <= 1

    def test_collapsed_stacks_helper_sorted(self, tmp_path):
        profiler = PhaseProfiler(tmp_path / "prof")
        with profiler.phase("p"):
            busy_work()
        stats = pstats.Stats(profiler.captures["p"][0])
        lines = collapsed_stacks(stats)
        assert lines == sorted(lines)

    def test_no_tmp_residue_after_dump(self, tmp_path):
        profiler = PhaseProfiler(tmp_path / "prof")
        with profiler.phase("p"):
            busy_work()
        assert not list((tmp_path / "prof").glob("*.tmp-*"))

    def test_repeated_phase_names_get_suffixes(self, tmp_path):
        profiler = PhaseProfiler(tmp_path / "prof")
        for _ in range(3):
            with profiler.phase("grid"):
                busy_work(200)
        names = sorted(p.name for p in
                       (tmp_path / "prof").glob("*.pstats"))
        assert names == ["grid-2.pstats", "grid-3.pstats",
                         "grid.pstats"]


class TestDepthGuard:
    def test_inner_phase_is_attributed_to_outer(self, tmp_path):
        profiler = PhaseProfiler(tmp_path / "prof")
        with profiler.phase("outer") as outer:
            with profiler.phase("inner") as inner:
                busy_work()
            assert inner is None
        assert outer is not None
        assert list(profiler.captures) == ["outer"]

    def test_sibling_phases_both_captured(self, tmp_path):
        profiler = PhaseProfiler(tmp_path / "prof")
        with profiler.phase("a"):
            busy_work(200)
        with profiler.phase("b"):
            busy_work(200)
        assert sorted(profiler.captures) == ["a", "b"]


class TestGuardedDegradation:
    def test_failed_dump_warns_once_and_disables(self, tmp_path):
        target = tmp_path / "prof"
        target.write_text("a file, not a directory")
        profiler = PhaseProfiler(target)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with profiler.phase("a"):
                busy_work(200)
            with profiler.phase("b"):
                busy_work(200)
        relevant = [w for w in caught
                    if "profiling failed" in str(w.message)]
        assert len(relevant) == 1
        assert profiler.captures == {}

    def test_disabled_profiler_still_yields(self, tmp_path):
        profiler = PhaseProfiler(tmp_path / "prof")
        profiler._disabled = True
        with profiler.phase("x") as handle:
            assert handle is None
