"""Unit tests for run manifests (repro.obs.manifest)."""

import json

from repro.cpu import SIMULATOR_VERSION
from repro.obs.manifest import (
    SCHEMA_VERSION,
    RunManifest,
    config_fingerprint,
)


class TestConfigFingerprint:
    def test_insensitive_to_mapping_order(self):
        a = config_fingerprint({"jobs": 2, "benchmarks": ["gzip"]})
        b = config_fingerprint({"benchmarks": ["gzip"], "jobs": 2})
        assert a == b

    def test_sensitive_to_content(self):
        a = config_fingerprint({"jobs": 2})
        b = config_fingerprint({"jobs": 3})
        assert a != b

    def test_is_hex_sha256(self):
        digest = config_fingerprint({"x": 1})
        assert len(digest) == 64
        int(digest, 16)


class TestRunManifest:
    def test_captures_environment(self):
        manifest = RunManifest(command="screen")
        assert manifest.simulator_version == SIMULATOR_VERSION
        assert manifest.python_version.count(".") == 2
        assert manifest.exit_status is None

    def test_finalize_stamps_outcome(self):
        manifest = RunManifest(command="screen")
        manifest.finalize(status="completed",
                          metrics={"tasks.completed":
                                   {"type": "counter", "value": 88}})
        assert manifest.exit_status == "completed"
        assert manifest.elapsed_seconds >= 0
        assert manifest.metrics["tasks.completed"]["value"] == 88

    def test_to_dict_groups(self):
        manifest = RunManifest(
            command="screen",
            fingerprint="ab" * 32,
            settings={"jobs": 2},
            workload={"benchmarks": "gzip"},
            fault_spec=None,
            artifacts={"trace": "t.json"},
        )
        manifest.finalize()
        doc = manifest.to_dict()
        assert doc["schema"] == SCHEMA_VERSION
        assert set(doc) == {"schema", "run", "host", "outcome",
                            "integrity"}
        assert doc["integrity"]["kind"] == "manifest"
        assert doc["integrity"]["sim"] == SIMULATOR_VERSION
        assert doc["run"]["command"] == "screen"
        assert doc["run"]["simulator_version"] == SIMULATOR_VERSION
        assert doc["run"]["settings"] == {"jobs": 2}
        assert doc["run"]["artifacts"] == {"trace": "t.json"}
        assert doc["outcome"]["exit_status"] == "completed"

    def test_write_round_trips(self, tmp_path):
        manifest = RunManifest(command="enhance")
        manifest.finalize(status="interrupted")
        path = manifest.write(tmp_path / "run.json")
        doc = json.loads(path.read_text())
        assert doc["run"]["command"] == "enhance"
        assert doc["outcome"]["exit_status"] == "interrupted"

    def test_write_creates_parent_dirs(self, tmp_path):
        manifest = RunManifest(command="screen")
        path = manifest.write(tmp_path / "deep" / "run.json")
        assert path.exists()
