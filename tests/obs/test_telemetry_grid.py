"""Engine integration: telemetry through run_grid, guarded observers,
and cache counter surfacing."""

import warnings

import pytest

from repro.cpu import MachineConfig
from repro.exec import ResultCache, SimTask, run_grid
from repro.obs import MetricsRegistry, Telemetry, Tracer
from repro.obs.telemetry import phase_of
from repro.workloads import benchmark_trace


@pytest.fixture(scope="module")
def traces():
    return [benchmark_trace("gzip", 600), benchmark_trace("mcf", 600)]


def _tasks(traces, repeat=2):
    return [
        SimTask(config=MachineConfig(), trace=trace)
        for trace in traces for _ in range(repeat)
    ]


class TestTelemetryFacade:
    def test_armed_builds_components(self):
        telemetry = Telemetry.armed(simulator_counters=True)
        assert isinstance(telemetry.tracer, Tracer)
        assert isinstance(telemetry.metrics, MetricsRegistry)
        assert telemetry.simulator_counters
        assert telemetry.enabled

    def test_partial_arming(self):
        telemetry = Telemetry.armed(trace=False)
        assert telemetry.tracer is None
        assert telemetry.metrics is not None
        assert telemetry.enabled

    def test_phase_without_tracer_is_noop(self):
        telemetry = Telemetry()
        with telemetry.phase("x"):
            pass
        assert not telemetry.enabled
        assert telemetry.snapshot() == {}

    def test_phase_of_accepts_none(self):
        with phase_of(None, "x"):
            pass

    def test_phase_records_span(self):
        telemetry = Telemetry.armed()
        with telemetry.phase("effects", rows=88):
            pass
        (span,) = telemetry.tracer.spans()
        assert span.name == "effects"
        assert span.category == "phase"
        assert span.attributes == {"rows": 88}


class TestGridTelemetry:
    def test_results_identical_with_telemetry(self, traces):
        tasks = _tasks(traces)
        bare = run_grid(tasks)
        telemetry = Telemetry.armed(simulator_counters=True)
        observed = run_grid(tasks, telemetry=telemetry)
        assert [s.cycles for s in observed] == [s.cycles for s in bare]

    def test_counters_match_grid(self, traces):
        tasks = _tasks(traces)
        telemetry = Telemetry.armed(simulator_counters=True)
        run_grid(tasks, telemetry=telemetry)
        snap = telemetry.snapshot()
        assert snap["grid.tasks"]["value"] == len(tasks)
        assert snap["tasks.completed"]["value"] == len(tasks)
        assert snap["tasks.simulated"]["value"] == len(tasks)
        assert snap["task.seconds"]["count"] == len(tasks)
        assert snap["sim.cycles"]["value"] > 0
        assert snap["sim.stall.mispredict"]["value"] >= 0

    def test_spans_cover_lifecycle(self, traces):
        tasks = _tasks(traces, repeat=1)
        telemetry = Telemetry.armed()
        run_grid(tasks, telemetry=telemetry)
        spans = telemetry.tracer.spans()
        names = {(s.category, s.name) for s in spans}
        assert ("grid", "grid") in names
        assert ("phase", "preload") in names
        assert ("task", "run") in names
        runs = [s for s in spans if s.name == "run"]
        assert len(runs) == len(tasks)
        for span in runs:
            assert span.end is not None
            assert span.attributes["outcome"] == "ok"

    def test_grid_span_attributes(self, traces):
        tasks = _tasks(traces, repeat=1)
        telemetry = Telemetry.armed()
        run_grid(tasks, telemetry=telemetry)
        (grid_span,) = [s for s in telemetry.tracer.spans()
                        if s.name == "grid"]
        assert grid_span.attributes["tasks"] == len(tasks)
        assert grid_span.attributes["completed"] == len(tasks)
        assert grid_span.attributes["failures"] == 0

    def test_sim_counters_are_opt_in(self, traces):
        tasks = _tasks(traces, repeat=1)
        telemetry = Telemetry.armed(simulator_counters=False)
        run_grid(tasks, telemetry=telemetry)
        assert not any(name.startswith("sim.")
                       for name in telemetry.metrics.names())


class TestGuardedObservation:
    def test_raising_progress_warns_once_and_continues(self, traces):
        tasks = _tasks(traces, repeat=1)
        calls = []

        def bad_progress(done, total):
            calls.append(done)
            raise RuntimeError("observer bug")

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = run_grid(tasks, progress=bad_progress)
        relevant = [w for w in caught
                    if "callback failed" in str(w.message)]
        assert len(relevant) == 1
        assert all(stats is not None for stats in result)
        # The callback keeps being invoked; only the warning is
        # deduplicated.
        assert len(calls) == len(tasks)

    def test_raising_tracer_warns_once_and_continues(self, traces):
        tasks = _tasks(traces, repeat=1)

        class BrokenTracer:
            def begin(self, *args, **kwargs):
                raise RuntimeError("tracer bug")

            finish = event = begin

        telemetry = Telemetry(tracer=BrokenTracer())
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            bare = run_grid(tasks)
            observed = run_grid(tasks, telemetry=telemetry)
        relevant = [w for w in caught
                    if "callback failed" in str(w.message)]
        assert len(relevant) == 1
        assert [s.cycles for s in observed] == [s.cycles for s in bare]


class TestCacheCounters:
    def test_cache_counters_method(self):
        cache = ResultCache()
        assert cache.counters() == {
            "corrupt": 0, "evicted": 0, "hits": 0, "misses": 0,
            "put_failures": 0, "quarantine_pruned": 0,
            "quarantined": 0,
        }

    def test_cache_counters_surface_in_registry(self, traces):
        tasks = _tasks(traces, repeat=1)
        cache = ResultCache()
        telemetry = Telemetry.armed()
        run_grid(tasks, cache=cache, telemetry=telemetry)
        snap = telemetry.snapshot()
        assert snap["cache.misses"]["value"] == len(tasks)
        assert snap["cache.hits"]["value"] == 0
        assert snap["cache.put_failures"]["value"] == 0

    def test_warm_cache_hits_counted_and_restored(self, traces):
        tasks = _tasks(traces, repeat=1)
        cache = ResultCache()
        run_grid(tasks, cache=cache)
        telemetry = Telemetry.armed()
        run_grid(tasks, cache=cache, telemetry=telemetry)
        snap = telemetry.snapshot()
        assert snap["cache.hits"]["value"] == len(tasks)
        assert snap["tasks.restored.cache"]["value"] == len(tasks)
        assert "tasks.simulated" not in snap

    def test_shared_registry_accumulates_deltas(self, traces):
        """A registry reused across grids sees per-grid deltas summed,
        not the cache's (larger) lifetime totals repeated."""
        tasks = _tasks(traces, repeat=1)
        cache = ResultCache()
        telemetry = Telemetry.armed()
        run_grid(tasks, cache=cache, telemetry=telemetry)   # all misses
        run_grid(tasks, cache=cache, telemetry=telemetry)   # all hits
        snap = telemetry.snapshot()
        assert snap["cache.misses"]["value"] == len(tasks)
        assert snap["cache.hits"]["value"] == len(tasks)

    def test_put_failure_counter_increments(self, traces, monkeypatch):
        tasks = _tasks(traces, repeat=1)
        cache = ResultCache()

        def failing_put(key, stats):
            raise OSError("disk full")

        monkeypatch.setattr(cache, "put", failing_put)
        telemetry = Telemetry.armed()
        with warnings.catch_warnings(record=True):
            warnings.simplefilter("always")
            result = run_grid(tasks, cache=cache, telemetry=telemetry)
        assert all(stats is not None for stats in result)
        assert cache.put_failures == 1
        snap = telemetry.snapshot()
        assert snap["cache.put_failures"]["value"] == 1
