"""The event log (repro.obs.stream): sealed-line writer, torn-tail
tolerant reader, generation repair, and trace reconstruction."""

import json
import warnings

import pytest

from repro.obs import Telemetry
from repro.obs.stream import (
    EVENT_SCHEMA,
    EventWriter,
    find_stream_lanes,
    scan_stream,
    trace_from_streams,
)


def lane_path(tmp_path, name="main"):
    return tmp_path / "stream" / f"{name}.events.jsonl"


class TestWriter:
    def test_first_emit_opens_with_anchor(self, tmp_path):
        path = lane_path(tmp_path)
        writer = EventWriter(path, lane="main", version="vX")
        writer.mark("hello", answer=42)
        writer.close("completed")
        scan = scan_stream(path)
        assert [r.kind for r in scan.records] == [
            "stream-open", "instant", "stream-close"]
        anchor = scan.records[0]
        assert anchor.attrs["schema"] == EVENT_SCHEMA
        assert anchor.attrs["sim"] == "vX"
        assert "wall" in anchor.attrs and "pid" in anchor.attrs
        assert scan.records[-1].attrs["status"] == "completed"

    def test_sequence_and_lane_on_every_record(self, tmp_path):
        path = lane_path(tmp_path, "w-1")
        with EventWriter(path, lane="w-1", version="v") as writer:
            for n in range(5):
                writer.mark(f"e{n}")
        scan = scan_stream(path)
        assert [r.seq for r in scan.records] == list(range(7))
        assert all(r.lane == "w-1" for r in scan.records)
        assert scan.lane == "w-1"

    def test_every_line_is_sealed(self, tmp_path):
        path = lane_path(tmp_path)
        with EventWriter(path, lane="main", version="v") as writer:
            writer.mark("x")
        for line in path.read_text().splitlines():
            entry = json.loads(line)
            assert len(entry.pop("sha")) == 64

    def test_span_pairing_by_sid(self, tmp_path):
        path = lane_path(tmp_path)
        writer = EventWriter(path, lane="main", version="v")
        sid = writer.open_span("task", "task", index=3)
        writer.close_span(sid, ok=True)
        writer.close()
        scan = scan_stream(path)
        opened = [r for r in scan.records if r.kind == "span-open"]
        closed = [r for r in scan.records if r.kind == "span-close"]
        assert opened[0].sid == closed[0].sid == sid
        assert opened[0].attrs == {"index": 3}
        assert closed[0].attrs == {"ok": True}

    def test_counter_streams_deltas(self, tmp_path):
        path = lane_path(tmp_path)
        with EventWriter(path, lane="main", version="v") as writer:
            writer.counter("tasks.completed", 2)
            writer.counter("tasks.completed", 3)
        scan = scan_stream(path)
        deltas = [r.attrs["delta"] for r in scan.records
                  if r.kind == "counter"]
        assert deltas == [2, 3]

    def test_gauge_deduplicates_unchanged_values(self, tmp_path):
        path = lane_path(tmp_path)
        with EventWriter(path, lane="main", version="v") as writer:
            for value in (5, 5, 5, 4, 4, 7):
                writer.gauge("queue.depth", value)
        scan = scan_stream(path)
        values = [r.attrs["value"] for r in scan.records
                  if r.kind == "gauge"]
        assert values == [5, 4, 7]

    def test_context_manager_exception_marks_interrupted(self, tmp_path):
        path = lane_path(tmp_path)
        with pytest.raises(RuntimeError):
            with EventWriter(path, lane="main", version="v") as writer:
                writer.mark("before")
                raise RuntimeError("boom")
        scan = scan_stream(path)
        assert scan.records[-1].kind == "stream-close"
        assert scan.records[-1].attrs["status"] == "interrupted"

    def test_close_is_idempotent_and_final(self, tmp_path):
        path = lane_path(tmp_path)
        writer = EventWriter(path, lane="main", version="v")
        writer.mark("x")
        writer.close()
        writer.close()
        writer.mark("after close")  # silently dropped
        closes = [r for r in scan_stream(path).records
                  if r.kind == "stream-close"]
        assert len(closes) == 1
        assert scan_stream(path).records[-1].kind == "stream-close"

    def test_io_failure_warns_once_and_disables(self, tmp_path):
        target = tmp_path / "stream" / "main.events.jsonl"
        target.mkdir(parents=True)  # open() will fail: it is a dir
        writer = EventWriter(target, lane="main", version="v")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            writer.mark("a")
            writer.mark("b")
        relevant = [w for w in caught
                    if "disabling the lane" in str(w.message)]
        assert len(relevant) == 1


class TestReader:
    def test_torn_tail_is_tolerated_not_damage(self, tmp_path):
        path = lane_path(tmp_path)
        with EventWriter(path, lane="main", version="v") as writer:
            writer.mark("x")
        with open(path, "ab") as handle:
            handle.write(b'{"v": 1, "lane": "main", "seq"')  # no \n
        scan = scan_stream(path)
        assert scan.torn_tail
        assert [reason for _, reason in scan.invalid] == ["torn"]
        assert scan.damage == ()
        assert len(scan.records) == 3  # torn line skipped, rest intact

    def test_midfile_checksum_damage_is_named(self, tmp_path):
        path = lane_path(tmp_path)
        with EventWriter(path, lane="main", version="v") as writer:
            writer.mark("x", value=1)
            writer.mark("y", value=2)
        lines = path.read_bytes().splitlines(keepends=True)
        lines[1] = lines[1].replace(b'"value":1', b'"value":9')
        path.write_bytes(b"".join(lines))
        scan = scan_stream(path)
        assert not scan.torn_tail
        assert scan.damage == ((2, "checksum"),)

    def test_midfile_malformed_line_is_named(self, tmp_path):
        path = lane_path(tmp_path)
        with EventWriter(path, lane="main", version="v") as writer:
            writer.mark("x")
        lines = path.read_bytes().splitlines(keepends=True)
        lines.insert(1, b"not json at all\n")
        path.write_bytes(b"".join(lines))
        scan = scan_stream(path)
        assert scan.damage == ((2, "malformed"),)
        assert len(scan.records) == 3

    def test_schema_drift_is_named_not_misread(self, tmp_path):
        path = lane_path(tmp_path)
        with EventWriter(path, lane="main", version="v") as writer:
            writer.mark("x")
        with open(path, "ab") as handle:
            handle.write(json.dumps({"v": EVENT_SCHEMA + 1}).encode()
                         + b"\n")
        scan = scan_stream(path)
        assert (4, "schema-drift") in scan.invalid
        assert scan.damage == ((4, "schema-drift"),)

    def test_blank_lines_are_skipped(self, tmp_path):
        path = lane_path(tmp_path)
        with EventWriter(path, lane="main", version="v") as writer:
            writer.mark("x")
        with open(path, "ab") as handle:
            handle.write(b"\n\n")
        scan = scan_stream(path)
        assert scan.invalid == ()
        assert len(scan.records) == 3

    def test_lane_inferred_from_filename_when_empty(self, tmp_path):
        path = lane_path(tmp_path, "w-7")
        path.parent.mkdir(parents=True)
        path.write_bytes(b"")
        assert scan_stream(path).lane == "w-7"


class TestGenerations:
    def test_reopen_repairs_torn_tail(self, tmp_path):
        path = lane_path(tmp_path)
        writer = EventWriter(path, lane="main", version="v")
        writer.mark("gen1")
        # Simulate a crash: the process dies mid-write, leaving an
        # unterminated line and no stream-close.
        writer._handle.close()
        with open(path, "ab") as handle:
            handle.write(b'{"v": 1, "torn":')
        second = EventWriter(path, lane="main", version="v")
        second.mark("gen2")
        second.close("completed")
        scan = scan_stream(path)
        # The residue was truncated before generation 2 appended:
        # every surviving line is valid.
        assert scan.invalid == ()
        generations = scan.generations()
        assert len(generations) == 2
        assert generations[0][0].kind == "stream-open"
        assert generations[1][0].kind == "stream-open"
        assert [r.name for r in generations[1]
                if r.kind == "instant"] == ["gen2"]

    def test_generations_split_at_stream_open(self, tmp_path):
        path = lane_path(tmp_path)
        for n in range(3):
            with EventWriter(path, lane="main", version="v") as writer:
                writer.mark(f"g{n}")
        scan = scan_stream(path)
        assert len(scan.generations()) == 3


class TestFindLanes:
    def test_run_dir_spool_and_bare_layouts(self, tmp_path):
        run_dir = tmp_path / "run"
        for rel in ("stream/main.events.jsonl",
                    "spool/stream/w-1.events.jsonl",
                    "spool/stream/w-2.events.jsonl"):
            target = run_dir / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_bytes(b"")
        assert len(find_stream_lanes(run_dir)) == 3
        assert len(find_stream_lanes(run_dir / "spool")) == 2
        assert len(find_stream_lanes(run_dir / "stream")) == 1
        assert find_stream_lanes(tmp_path / "empty") == []


class TestTraceReconstruction:
    def _scan(self, tmp_path):
        main = lane_path(tmp_path, "main")
        with EventWriter(main, lane="main", version="v") as writer:
            sid = writer.open_span("grid", "grid", tasks=4)
            writer.gauge("queue.depth", 3)
            writer.mark("retry", "event", index=1)
            writer.close_span(sid, completed=4)
        worker = lane_path(tmp_path, "w-1")
        writer = EventWriter(worker, lane="w-1", version="v")
        writer.open_span("task", "task", index=0)  # never closed
        del writer  # killed worker: no stream-close, span dangling
        return [scan_stream(main), scan_stream(worker)]

    def test_spans_become_complete_events(self, tmp_path):
        doc = trace_from_streams(self._scan(tmp_path))
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        grid = [e for e in complete if e["name"] == "grid"]
        assert grid[0]["args"] == {"tasks": 4, "completed": 4}
        assert grid[0]["dur"] >= 0

    def test_dangling_span_closed_as_interrupted(self, tmp_path):
        doc = trace_from_streams(self._scan(tmp_path))
        task = [e for e in doc["traceEvents"]
                if e["ph"] == "X" and e["name"] == "task"]
        assert task[0]["args"]["interrupted"] is True

    def test_gauges_and_instants_mapped(self, tmp_path):
        doc = trace_from_streams(self._scan(tmp_path))
        phases = {e["name"]: e["ph"] for e in doc["traceEvents"]
                  if e["ph"] in ("C", "i")}
        assert phases == {"queue.depth": "C", "retry": "i"}

    def test_lanes_become_named_threads_main_first(self, tmp_path):
        doc = trace_from_streams(self._scan(tmp_path))
        threads = {e["args"]["name"]: e["tid"]
                   for e in doc["traceEvents"]
                   if e["ph"] == "M" and e["name"] == "thread_name"}
        assert threads == {"main": 0, "w-1": 1}

    def test_wall_anchor_from_main_lane(self, tmp_path):
        doc = trace_from_streams(self._scan(tmp_path))
        assert doc["otherData"]["epoch_wall_time"] > 0
        assert doc["otherData"]["event_schema"] == EVENT_SCHEMA

    def test_document_is_json_serializable(self, tmp_path):
        doc = trace_from_streams(self._scan(tmp_path))
        assert json.loads(json.dumps(doc, sort_keys=True)) == doc


class TestInterruptedFlush:
    """Satellite: an interrupted run still flushes span closes and
    seals its generation (Telemetry.close)."""

    def test_close_flushes_open_spans_into_stream(self, tmp_path):
        path = lane_path(tmp_path)
        stream = EventWriter(path, lane="main", version="v")
        telemetry = Telemetry.armed(simulator_counters=True,
                                    stream=stream)
        telemetry.tracer.begin("grid", "grid", tasks=88)
        telemetry.metrics.count("tasks.completed", 17)
        telemetry.close("interrupted")
        scan = scan_stream(path)
        closes = [r for r in scan.records if r.kind == "span-close"]
        assert closes and closes[0].attrs["interrupted"] is True
        assert scan.records[-1].kind == "stream-close"
        assert scan.records[-1].attrs["status"] == "interrupted"

    def test_trace_reconstructs_after_interrupt(self, tmp_path):
        path = lane_path(tmp_path)
        stream = EventWriter(path, lane="main", version="v")
        telemetry = Telemetry.armed(stream=stream)
        telemetry.tracer.begin("pb-design", "phase")
        telemetry.close("interrupted")
        doc = trace_from_streams([scan_stream(path)])
        (span,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert span["name"] == "pb-design"
        assert span["args"]["interrupted"] is True

    def test_close_is_idempotent(self, tmp_path):
        path = lane_path(tmp_path)
        stream = EventWriter(path, lane="main", version="v")
        telemetry = Telemetry.armed(stream=stream)
        with telemetry.phase("x"):
            pass
        telemetry.close("completed")
        telemetry.close("completed")
        closes = [r for r in scan_stream(path).records
                  if r.kind == "stream-close"]
        assert len(closes) == 1
