"""Fleet aggregation (repro.obs.fleet): merged spool + lane state,
worker classification, counter roll-ups, and the rendered view."""

import time

from repro.dist.spool import Spool
from repro.obs.fleet import fleet_snapshot
from repro.obs.stream import EventWriter


def make_spool(tmp_path, n_tasks=4):
    spool = Spool(tmp_path / "spool")
    spool.ensure()
    spool.write_manifest(n_tasks=n_tasks)
    return spool


def worker_lane(spool, worker, *, close=None, task_ok=None,
                last_mark=None):
    writer = EventWriter(spool.stream_dir / f"{worker}.events.jsonl",
                         lane=worker, version="v")
    if task_ok is not None:
        sid = writer.open_span("task", "task", index=0)
        writer.close_span(sid, ok=task_ok)
    if last_mark is not None:
        writer.mark(last_mark, "worker")
    if close is not None:
        writer.close(close)
    elif writer._handle is not None:
        writer._handle.close()  # vanish without a stream-close
    return writer


class TestEmptyRoots:
    def test_empty_directory_yields_empty_snapshot(self, tmp_path):
        snap = fleet_snapshot(tmp_path)
        assert snap.workers == []
        assert snap.counters == {}
        assert snap.progress == {}
        assert not snap.complete
        assert "(no workers observed)" in snap.render()


class TestWorkerStates:
    def test_idle_executing_and_claiming(self, tmp_path):
        spool = make_spool(tmp_path)
        spool.heartbeat("w-idle")
        spool.heartbeat("w-exec")
        spool.heartbeat("w-claim")
        spool.publish_task("k" * 16, 0, 1, {"cell": 0})
        assert spool.claim("k" * 16)
        spool.write_lease("k" * 16, "w-exec", 1, ttl=60.0)
        worker_lane(spool, "w-claim", last_mark="claim")
        snap = fleet_snapshot(tmp_path / "spool")
        states = {w.worker: w.state for w in snap.workers}
        assert states == {"w-idle": "idle", "w-exec": "executing",
                          "w-claim": "claiming"}
        (exec_view,) = [w for w in snap.workers
                        if w.worker == "w-exec"]
        assert exec_view.leases[0][0] == "k" * 12
        assert exec_view.leases[0][1] > 0

    def test_stalled_and_dead_from_beat_age(self, tmp_path):
        spool = make_spool(tmp_path)
        now = time.monotonic()
        (spool.hb_dir / "w-stall.hb").write_text(f"{now - 8.0:.6f}\n")
        (spool.hb_dir / "w-dead.hb").write_text(f"{now - 120.0:.6f}\n")
        snap = fleet_snapshot(tmp_path / "spool", heartbeat_grace=5.0)
        states = {w.worker: w.state for w in snap.workers}
        assert states == {"w-stall": "stalled", "w-dead": "dead"}

    def test_exited_outranks_liveness(self, tmp_path):
        spool = make_spool(tmp_path)
        spool.heartbeat("w-1")
        worker_lane(spool, "w-1", close="detached", task_ok=True)
        snap = fleet_snapshot(tmp_path / "spool")
        (view,) = snap.workers
        assert view.state == "exited"
        assert view.tasks_done == 1

    def test_silent_worker_lane_without_heartbeat(self, tmp_path):
        spool = make_spool(tmp_path)
        worker_lane(spool, "w-gone", task_ok=False)
        snap = fleet_snapshot(tmp_path / "spool")
        (view,) = snap.workers
        assert view.state == "silent"
        assert view.beat_age is None
        assert view.tasks_failed == 1


class TestRollups:
    def lane(self, root, records):
        writer = EventWriter(root / "stream" / "main.events.jsonl",
                             lane="main", version="v")
        for kind, args in records:
            getattr(writer, kind)(*args)
        return writer

    def test_counters_sum_across_lanes(self, tmp_path):
        spool = make_spool(tmp_path)
        for worker, n in (("w-1", 2), ("w-2", 3)):
            writer = EventWriter(
                spool.stream_dir / f"{worker}.events.jsonl",
                lane=worker, version="v")
            writer.counter("tasks.completed", n)
            writer.close()
        snap = fleet_snapshot(tmp_path / "spool")
        assert snap.counters["tasks.completed"] == 5

    def test_latest_generation_only(self, tmp_path):
        """A restarted broker re-counts restored cells; its earlier
        generation must not double the tally."""
        path = tmp_path / "stream" / "main.events.jsonl"
        first = EventWriter(path, lane="main", version="v")
        first.counter("tasks.completed", 40)
        first._handle.close()  # crash: no stream-close
        second = EventWriter(path, lane="main", version="v")
        second.counter("tasks.completed", 88)
        second.progress(88, 88)
        second.close("completed")
        snap = fleet_snapshot(tmp_path)
        assert snap.counters["tasks.completed"] == 88
        assert snap.progress == {"done": 88, "total": 88}
        assert snap.complete
        assert snap.lanes["main"]["generations"] == 2

    def test_progress_prefers_main_lane_records(self, tmp_path):
        writer = self.lane(tmp_path, [("progress", (30, 88))])
        writer.close()
        snap = fleet_snapshot(tmp_path)
        assert snap.progress == {"done": 30, "total": 88}
        assert not snap.complete

    def test_progress_falls_back_to_spool_manifest(self, tmp_path):
        spool = make_spool(tmp_path, n_tasks=10)
        writer = EventWriter(spool.stream_dir / "w-1.events.jsonl",
                             lane="w-1", version="v")
        writer.counter("tasks.completed", 4)
        writer.close()
        snap = fleet_snapshot(tmp_path)  # run-dir root, spool/ inside
        assert snap.progress == {"done": 4, "total": 10}

    def test_gauges_take_last_value(self, tmp_path):
        writer = self.lane(tmp_path, [
            ("gauge", ("queue.depth", 7)),
            ("gauge", ("queue.depth", 2)),
        ])
        writer.close()
        snap = fleet_snapshot(tmp_path)
        assert snap.gauges["queue.depth"] == 2


class TestSnapshotSurface:
    def test_to_dict_round_trips_to_json(self, tmp_path):
        import json

        spool = make_spool(tmp_path)
        spool.heartbeat("w-1")
        worker_lane(spool, "w-1", close="detached", task_ok=True)
        snap = fleet_snapshot(tmp_path / "spool")
        doc = json.loads(json.dumps(snap.to_dict(), sort_keys=True))
        assert doc["workers"][0]["worker"] == "w-1"
        assert doc["lanes"]["w-1"]["records"] > 0

    def test_render_shows_progress_and_torn_lanes(self, tmp_path):
        spool = make_spool(tmp_path)
        writer = EventWriter(spool.stream_dir / "main.events.jsonl",
                             lane="main", version="v")
        writer.progress(3, 8)
        writer._handle.close()
        with open(writer.path, "ab") as handle:
            handle.write(b'{"torn')
        snap = fleet_snapshot(tmp_path / "spool")
        text = snap.render()
        assert "tasks 3/8" in text
        assert "torn lanes (crash signatures): main" in text

    def test_eta_zero_when_done(self, tmp_path):
        writer = EventWriter(tmp_path / "stream" / "main.events.jsonl",
                             lane="main", version="v")
        writer.progress(8, 8)
        writer.close()
        snap = fleet_snapshot(tmp_path)
        assert snap.eta_seconds == 0.0
        assert snap.complete
