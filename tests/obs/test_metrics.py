"""Unit tests for the metrics registry (repro.obs.metrics)."""

import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestInstruments:
    def test_counter_increments(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert c.snapshot() == {"type": "counter", "value": 5}

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_counter_accepts_zero(self):
        c = Counter()
        c.inc(0)
        assert c.value == 0

    def test_gauge_tracks_peak_and_samples(self):
        g = Gauge()
        for value in (3, 7, 2):
            g.set(value)
        snap = g.snapshot()
        assert snap == {"type": "gauge", "value": 2, "peak": 7,
                        "samples": 3}

    def test_histogram_summary(self):
        h = Histogram()
        for value in (1.0, 3.0, 2.0):
            h.observe(value)
        snap = h.snapshot()
        assert snap["count"] == 3
        assert snap["min"] == 1.0
        assert snap["max"] == 3.0
        assert snap["mean"] == pytest.approx(2.0)

    def test_empty_histogram_snapshot(self):
        snap = Histogram().snapshot()
        assert snap["count"] == 0
        assert snap["mean"] is None


class TestRegistry:
    def test_instruments_created_on_first_use(self):
        registry = MetricsRegistry()
        registry.count("tasks.completed")
        registry.set_gauge("queue.depth", 4)
        registry.observe("task.seconds", 0.25)
        assert registry.names() == [
            "queue.depth", "task.seconds", "tasks.completed",
        ]

    def test_kind_clash_raises(self):
        registry = MetricsRegistry()
        registry.count("x")
        with pytest.raises(TypeError):
            registry.set_gauge("x", 1)

    def test_absorb_counts_with_prefix(self):
        registry = MetricsRegistry()
        registry.absorb_counts({"fetch": 10, "rob_full": 3},
                               prefix="sim.stall.")
        registry.absorb_counts({"fetch": 5}, prefix="sim.stall.")
        snap = registry.snapshot()
        assert snap["sim.stall.fetch"]["value"] == 15
        assert snap["sim.stall.rob_full"]["value"] == 3

    def test_snapshot_keys_sorted(self):
        registry = MetricsRegistry()
        for name in ("b", "a", "c"):
            registry.count(name)
        assert list(registry.snapshot()) == ["a", "b", "c"]

    def test_contains_and_len(self):
        registry = MetricsRegistry()
        registry.count("a")
        assert "a" in registry
        assert "b" not in registry
        assert len(registry) == 1

    def test_items_sorted(self):
        registry = MetricsRegistry()
        registry.count("b")
        registry.count("a")
        assert [name for name, _ in registry.items()] == ["a", "b"]
