"""Unit tests for the span tracer (repro.obs.span)."""

import pytest

from repro.obs.span import SUPERVISOR_TRACK, Span, Tracer


class TestSpan:
    def test_duration_none_while_open(self):
        span = Span("x", "task", {}, start=1.0)
        assert span.duration is None
        span.end = 3.5
        assert span.duration == pytest.approx(2.5)

    def test_ident_is_content_derived(self):
        a = Span("run", "task", {"index": 3, "attempt": 0}, start=0.0)
        b = Span("run", "task", {"attempt": 0, "index": 3}, start=9.9)
        assert a.ident() == b.ident()
        assert a.ident() == "task:run:attempt=0:index=3"

    def test_ident_distinguishes_attributes(self):
        a = Span("run", "task", {"index": 3}, start=0.0)
        b = Span("run", "task", {"index": 4}, start=0.0)
        assert a.ident() != b.ident()


class TestTracer:
    def test_begin_finish_records_interval(self):
        tracer = Tracer()
        span = tracer.begin("grid", "grid", tasks=4)
        assert span.end is None
        tracer.finish(span, completed=4)
        assert span.end is not None
        assert span.end >= span.start
        assert span.attributes == {"tasks": 4, "completed": 4}
        assert tracer.spans() == [span]

    def test_finish_is_idempotent(self):
        tracer = Tracer()
        span = tracer.begin("a")
        tracer.finish(span)
        first_end = span.end
        tracer.finish(span, outcome="late")
        assert span.end == first_end
        assert span.attributes["outcome"] == "late"

    def test_event_is_instant(self):
        tracer = Tracer()
        span = tracer.event("retry", "fault", index=2)
        assert span.instant
        assert span.end == span.start

    def test_default_track_is_supervisor(self):
        tracer = Tracer()
        assert tracer.begin("a").track == SUPERVISOR_TRACK
        assert tracer.begin("b", track=3).track == 3

    def test_context_manager_closes_span(self):
        tracer = Tracer()
        with tracer.span("phase-x", rows=88) as span:
            assert span.end is None
        assert span.end is not None
        assert "error" not in span.attributes

    def test_context_manager_records_error_type(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("phase-x"):
                raise ValueError("boom")
        (span,) = tracer.spans()
        assert span.end is not None
        assert span.attributes["error"] == "ValueError"

    def test_close_open_spans_marks_interrupted(self):
        tracer = Tracer()
        open_span = tracer.begin("a")
        closed_span = tracer.finish(tracer.begin("b"))
        assert tracer.close_open_spans() == 1
        assert open_span.end is not None
        assert open_span.attributes["interrupted"] is True
        assert "interrupted" not in closed_span.attributes

    def test_len_counts_spans_and_events(self):
        tracer = Tracer()
        tracer.finish(tracer.begin("a"))
        tracer.event("e")
        assert len(tracer) == 2
