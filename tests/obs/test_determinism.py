"""The telemetry determinism contract, end to end (see
docs/observability.md): an 88-run PB screen with tracing and metrics
enabled under a parallel pool is bit-identical to a bare serial run,
and two identical instrumented runs produce the same trace structure
and the same deterministic metric values."""

import multiprocessing

import pytest

from repro.core import PBExperiment
from repro.obs import Telemetry, chrome_trace, scrub_trace
from repro.workloads import benchmark_suite

fork_available = "fork" in multiprocessing.get_all_start_methods()

#: Short traces keep the full 88-configuration screen fast.
TRACE_LENGTH = 400


@pytest.fixture(scope="module")
def traces():
    return benchmark_suite(length=TRACE_LENGTH, names=["gzip"])


def _screen(traces, telemetry=None, jobs=1):
    # The default (full 41-parameter, foldover) design: 88 runs, as in
    # the paper and the CLI's ``repro screen``.
    return PBExperiment(traces).run(jobs=jobs, telemetry=telemetry)


@pytest.fixture(scope="module")
def observed_runs(traces):
    """Two identical fully-instrumented parallel screens."""
    jobs = 2 if fork_available else 1
    first = Telemetry.armed(simulator_counters=True)
    second = Telemetry.armed(simulator_counters=True)
    result_a = _screen(traces, telemetry=first, jobs=jobs)
    result_b = _screen(traces, telemetry=second, jobs=jobs)
    return (first, result_a), (second, result_b)


class TestBitIdenticalResults:
    def test_telemetry_run_matches_bare_serial_run(self, traces,
                                                   observed_runs):
        bare = _screen(traces)
        (_, observed), _ = observed_runs
        assert observed.responses == bare.responses
        assert observed.ranks() == bare.ranks()


class TestStructuralTraceIdentity:
    def test_scrubbed_traces_equal(self, observed_runs):
        (first, _), (second, _) = observed_runs
        a = scrub_trace(chrome_trace(first.tracer))
        b = scrub_trace(chrome_trace(second.tracer))
        assert a == b

    def test_lifecycle_phases_distinguishable(self, observed_runs):
        (first, _), _ = observed_runs
        trace = chrome_trace(first.tracer)
        names = {(e.get("cat"), e["name"])
                 for e in trace["traceEvents"] if e["ph"] != "M"}
        assert ("grid", "grid") in names
        assert ("phase", "preload") in names
        assert ("task", "run") in names
        if fork_available:
            assert ("task", "queue") in names

    def test_trace_covers_run_wall_time(self, observed_runs):
        (first, _), _ = observed_runs
        spans = first.tracer.spans()
        extent = max(s.end for s in spans) - min(s.start for s in spans)
        covered = sum(
            s.duration for s in spans
            if (s.category, s.name) in (
                ("grid", "grid"),
                ("phase", "pb-design"),
                ("phase", "pb-analyze"),
            )
        )
        assert covered >= 0.90 * extent


class TestDeterministicMetrics:
    def test_counter_values_identical_across_runs(self, observed_runs):
        (first, _), (second, _) = observed_runs
        a = first.metrics.snapshot()
        b = second.metrics.snapshot()
        assert list(a) == list(b)
        for name, fields in a.items():
            if fields["type"] == "counter":
                assert fields["value"] == b[name]["value"], name
            elif fields["type"] == "histogram":
                # wall-time values vary; the observation count must not
                assert fields["count"] == b[name]["count"], name

    def test_counts_match_design_size(self, observed_runs):
        (first, _), _ = observed_runs
        snap = first.metrics.snapshot()
        assert snap["grid.tasks"]["value"] == 88
        assert snap["tasks.completed"]["value"] == 88
        assert snap["tasks.simulated"]["value"] == 88
        assert "tasks.failed" not in snap
        assert snap["sim.instructions"]["value"] == 88 * TRACE_LENGTH
