"""Unit tests for the exporters (repro.obs.export)."""

import json

from repro.obs.export import (
    chrome_trace,
    render_metrics_table,
    scrub_trace,
    write_chrome_trace,
    write_metrics_jsonl,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.span import Tracer


def _sample_tracer():
    tracer = Tracer()
    grid = tracer.begin("grid", "grid", tasks=2)
    queued = tracer.begin("queue", "task", asynchronous=True, index=0)
    run = tracer.begin("run", "task", track=1, index=0, attempt=0)
    tracer.event("retry", "fault", index=1)
    tracer.finish(run, outcome="ok")
    tracer.finish(queued, outcome="dispatched")
    tracer.finish(grid, completed=2)
    return tracer


class TestChromeTrace:
    def test_sync_spans_become_complete_events(self):
        trace = chrome_trace(_sample_tracer())
        complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {"grid", "run"}
        for event in complete:
            assert event["dur"] >= 0
            assert event["ts"] >= 0
            assert event["pid"] == 1

    def test_async_spans_become_paired_events(self):
        trace = chrome_trace(_sample_tracer())
        begins = [e for e in trace["traceEvents"] if e["ph"] == "b"]
        ends = [e for e in trace["traceEvents"] if e["ph"] == "e"]
        assert len(begins) == len(ends) == 1
        assert begins[0]["id"] == ends[0]["id"]
        # identity derives from content (category:name:attrs), never
        # from the clock or RNG
        assert begins[0]["id"].startswith("task:queue:index=0")

    def test_instants_and_metadata(self):
        trace = chrome_trace(_sample_tracer())
        instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        assert [e["name"] for e in instants] == ["retry"]
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta}
        assert "repro" in names        # process_name
        assert "supervisor" in names   # track 0
        assert "worker-0" in names     # track 1

    def test_open_spans_closed_and_marked(self):
        tracer = Tracer()
        tracer.begin("grid", "grid")
        trace = chrome_trace(tracer)
        (event,) = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert event["args"]["interrupted"] is True

    def test_document_shape(self):
        trace = chrome_trace(_sample_tracer())
        assert trace["displayTimeUnit"] == "ms"
        assert trace["otherData"]["producer"] == "repro.obs"
        json.dumps(trace)  # must be JSON-serializable as-is


class TestScrubTrace:
    def test_identical_structure_scrubs_equal(self):
        a = scrub_trace(chrome_trace(_sample_tracer()))
        b = scrub_trace(chrome_trace(_sample_tracer()))
        assert a == b

    def test_timestamps_and_lanes_dropped(self):
        lines = scrub_trace(chrome_trace(_sample_tracer()))
        for line in lines:
            event = json.loads(line)
            for field in ("ts", "dur", "tid", "pid"):
                assert field not in event
            assert event["ph"] != "M"

    def test_structural_differences_detected(self):
        tracer = _sample_tracer()
        tracer.event("extra", "fault")
        assert scrub_trace(chrome_trace(tracer)) \
            != scrub_trace(chrome_trace(_sample_tracer()))

    def test_worker_attribute_dropped(self):
        tracer = Tracer()
        tracer.finish(tracer.begin("run", "task", worker=3, index=0))
        (line,) = scrub_trace(chrome_trace(tracer))
        assert "worker" not in json.loads(line)["args"]


class TestFileWriters:
    def test_write_chrome_trace(self, tmp_path):
        path = write_chrome_trace(_sample_tracer(),
                                  tmp_path / "trace.json")
        trace = json.loads(path.read_text())
        assert trace["traceEvents"]

    def test_write_metrics_jsonl(self, tmp_path):
        registry = MetricsRegistry()
        registry.count("tasks.completed", 7)
        registry.observe("task.seconds", 0.5)
        path = write_metrics_jsonl(registry, tmp_path / "m.jsonl")
        lines = [json.loads(line)
                 for line in path.read_text().splitlines()]
        assert [entry["name"] for entry in lines] \
            == ["task.seconds", "tasks.completed"]
        assert lines[1] == {"name": "tasks.completed",
                            "type": "counter", "value": 7}


class TestRenderMetricsTable:
    def test_all_kinds_render(self):
        registry = MetricsRegistry()
        registry.count("tasks.completed", 3)
        registry.set_gauge("queue.depth", 2)
        registry.observe("task.seconds", 0.5)
        text = render_metrics_table(registry)
        assert "tasks.completed" in text
        assert "queue.depth" in text
        assert "task.seconds" in text
        assert "peak" in text
        assert "mean" in text
