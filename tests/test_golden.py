"""Golden regression tests.

These pin exact values of the deterministic pipeline so that any
unintended behavioural change — in the workload generator, the
simulator, or the design construction — trips a test instead of
silently shifting every experiment.  If a change is *intentional*,
update the constants here and note it in CHANGELOG.md (all published
EXPERIMENTS.md numbers must then be re-measured).
"""

import hashlib

import pytest

from repro.cpu import MachineConfig, simulate
from repro.doe import pb_matrix
from repro.workloads import benchmark_trace

#: (cycles, L1D misses, mispredictions) of the default machine on
#: 2000-instruction canonical traces, with warmup.
GOLDEN_RUNS = {
    "gzip": (1214, 15, 32),
    "mcf": (1860, 77, 67),
    "mesa": (1715, 9, 95),
}

#: SHA-256 prefix of the X = 44 design matrix bytes.
GOLDEN_PB44_SHA = "29a15c3a130bd1c9"


@pytest.mark.parametrize("bench", sorted(GOLDEN_RUNS))
def test_golden_simulation(bench):
    trace = benchmark_trace(bench, 2000)
    stats = simulate(MachineConfig(), trace, warmup=True)
    assert (stats.cycles, stats.l1d.misses, stats.mispredictions) \
        == GOLDEN_RUNS[bench]


def test_golden_design_matrix():
    digest = hashlib.sha256(pb_matrix(44).tobytes()).hexdigest()
    assert digest.startswith(GOLDEN_PB44_SHA)
