"""Tests for the execution engine (repro.exec).

The engine's contract has three legs, each covered here:

* determinism — parallel and serial runs of the same grid produce
  bit-identical responses, effects and ranks;
* caching — a warm cache answers a repeated grid with zero calls into
  the simulator, and a simulator version bump invalidates it;
* keying — the content hash reacts to every input that can change a
  measurement, and nothing else.
"""

import multiprocessing

import pytest

from repro.core import PBExperiment
from repro.cpu import MachineConfig, SIMULATOR_VERSION, simulate
from repro.exec import ResultCache, SimTask, grid_tasks, run_grid, task_key
import repro.exec.engine as engine
from repro.workloads import benchmark_trace

SUBSET = [
    "Reorder Buffer Entries",
    "LSQ Entries",
    "BPred Type",
    "Int ALUs",
    "L1 D-Cache Size",
    "L2 Cache Latency",
    "Memory Latency First",
]

fork_available = "fork" in multiprocessing.get_all_start_methods()


@pytest.fixture(scope="module")
def traces():
    return {
        "gzip": benchmark_trace("gzip", 1200),
        "mcf": benchmark_trace("mcf", 1200),
    }


@pytest.fixture(scope="module")
def serial_result(traces):
    return PBExperiment(traces, parameter_names=SUBSET).run()


def _counting(monkeypatch):
    """Replace the engine's simulate with a counting wrapper."""
    calls = {"n": 0}
    real = engine.simulate

    def counting_simulate(*args, **kwargs):
        calls["n"] += 1
        return real(*args, **kwargs)

    monkeypatch.setattr(engine, "simulate", counting_simulate)
    return calls


class TestDeterminism:
    @pytest.mark.skipif(not fork_available, reason="needs fork")
    def test_parallel_identical_to_serial(self, traces, serial_result):
        parallel = PBExperiment(traces, parameter_names=SUBSET) \
            .run(jobs=3)
        assert parallel.responses == serial_result.responses
        for bench in serial_result.responses:
            assert parallel.effects[bench].effects == \
                serial_result.effects[bench].effects
        assert parallel.ranks() == serial_result.ranks()

    def test_results_in_task_order(self, traces):
        configs = [
            MachineConfig(),
            MachineConfig().evolve(rob_entries=64, lsq_entries=32),
            MachineConfig().evolve(l2_latency=20),
        ]
        stats = run_grid(grid_tasks(configs, traces))
        index = 0
        for config in configs:
            for bench in traces:
                expected = simulate(config, traces[bench], warmup=True)
                assert stats[index].cycles == expected.cycles
                index += 1

    def test_progress_counts_every_task(self, traces):
        tasks = grid_tasks([MachineConfig()], traces)
        seen = []
        run_grid(tasks, progress=lambda done, total: seen.append(
            (done, total)
        ))
        assert seen == [(1, 2), (2, 2)]

    def test_jobs_must_be_positive(self, traces):
        tasks = grid_tasks([MachineConfig()], traces)
        with pytest.raises(ValueError, match="jobs"):
            run_grid(tasks, jobs=0)


class TestCache:
    def test_warm_cache_runs_zero_simulations(
        self, tmp_path, traces, serial_result, monkeypatch
    ):
        cache_dir = tmp_path / "cache"
        first = PBExperiment(traces, parameter_names=SUBSET) \
            .run(cache=ResultCache(cache_dir))
        calls = _counting(monkeypatch)
        # A fresh ResultCache instance: every hit must come off disk.
        warm = ResultCache(cache_dir)
        second = PBExperiment(traces, parameter_names=SUBSET) \
            .run(cache=warm)
        assert calls["n"] == 0
        assert warm.hits == 16 * len(traces) and warm.misses == 0
        assert second.responses == first.responses == \
            serial_result.responses
        assert second.ranks() == serial_result.ranks()

    def test_version_bump_invalidates(self, tmp_path, traces,
                                      monkeypatch):
        task = SimTask(config=MachineConfig(), trace=traces["gzip"])
        cache = ResultCache(tmp_path / "cache")
        calls = _counting(monkeypatch)
        run_grid([task], cache=cache)
        assert calls["n"] == 1
        run_grid([task], cache=cache)          # warm: no new call
        assert calls["n"] == 1
        run_grid([task], cache=cache, version=SIMULATOR_VERSION + "-next")
        assert calls["n"] == 2                 # version bump: re-measured

    def test_progress_includes_cache_hits(self, tmp_path, traces):
        tasks = grid_tasks([MachineConfig()], traces)
        cache = ResultCache(tmp_path / "cache")
        run_grid(tasks, cache=cache)
        seen = []
        run_grid(tasks, cache=cache, progress=lambda d, t: seen.append(
            (d, t)
        ))
        assert seen == [(1, 2), (2, 2)]

    def test_disk_roundtrip_preserves_stats(self, tmp_path, traces):
        task = SimTask(config=MachineConfig(), trace=traces["mcf"])
        key = task_key(task)
        stats = simulate(MachineConfig(), traces["mcf"], warmup=True)
        ResultCache(tmp_path / "cache").put(key, stats)
        loaded = ResultCache(tmp_path / "cache").get(key)
        assert loaded == stats

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        (tmp_path / "cache" / "deadbeef.pkl").write_bytes(b"not a pickle")
        assert cache.get("deadbeef") is None

    def test_foreign_version_entry_rejected_on_get(self, tmp_path,
                                                   traces):
        """An entry *written* under another SIMULATOR_VERSION is
        rejected by its seal even when it sits under the right file
        name (hand-migrated directories, edited files)."""
        task = SimTask(config=MachineConfig(), trace=traces["gzip"])
        key = task_key(task)
        stats = simulate(MachineConfig(), traces["gzip"], warmup=True)
        ResultCache(tmp_path / "cache", version="v-old").put(key, stats)
        cache = ResultCache(tmp_path / "cache", version="v-new")
        assert cache.get(key) is None
        assert cache.quarantined == {"version-drift": 1}
        assert cache.counters()["quarantined"] == 1
        quarantine = tmp_path / "cache" / "quarantine"
        assert [f.name for f in quarantine.iterdir()] == \
            [f"{key}.version-drift.pkl"]
        # Quarantined means gone for good: the retry is still a miss
        # and does not double-count.
        assert cache.get(key) is None
        assert cache.counters()["quarantined"] == 1

    def test_memory_only_cache(self, traces, monkeypatch):
        tasks = grid_tasks([MachineConfig()], traces)
        cache = ResultCache()
        calls = _counting(monkeypatch)
        first = run_grid(tasks, cache=cache)
        second = run_grid(tasks, cache=cache)
        assert calls["n"] == len(tasks)
        assert [s.cycles for s in first] == [s.cycles for s in second]


class TestTaskKey:
    def test_stable_for_equal_inputs(self, traces):
        a = SimTask(config=MachineConfig(), trace=traces["gzip"])
        b = SimTask(config=MachineConfig(), trace=traces["gzip"])
        assert task_key(a) == task_key(b)

    def test_config_changes_key(self, traces):
        base = SimTask(config=MachineConfig(), trace=traces["gzip"])
        other = SimTask(
            config=MachineConfig().evolve(rob_entries=64),
            trace=traces["gzip"],
        )
        assert task_key(base) != task_key(other)

    def test_trace_changes_key(self, traces):
        a = SimTask(config=MachineConfig(), trace=traces["gzip"])
        b = SimTask(config=MachineConfig(), trace=traces["mcf"])
        assert task_key(a) != task_key(b)

    def test_enhancement_settings_change_key(self, traces):
        plain = SimTask(config=MachineConfig(), trace=traces["gzip"])
        precompute = SimTask(
            config=MachineConfig(), trace=traces["gzip"],
            precompute_table=frozenset({1, 2, 3}),
        )
        prefetch = SimTask(
            config=MachineConfig(), trace=traces["gzip"],
            prefetch_lines=2,
        )
        keys = {task_key(plain), task_key(precompute), task_key(prefetch)}
        assert len(keys) == 3

    def test_version_changes_key(self, traces):
        task = SimTask(config=MachineConfig(), trace=traces["gzip"])
        assert task_key(task) != task_key(task, version="other")


class TestFingerprint:
    def test_memoised_and_stable(self, traces):
        trace = traces["gzip"]
        assert trace.fingerprint() == trace.fingerprint()
        rebuilt = benchmark_trace("gzip", 1200)
        assert rebuilt.fingerprint() == trace.fingerprint()

    def test_content_sensitive(self, traces):
        assert traces["gzip"].fingerprint() != traces["mcf"].fingerprint()
        longer = benchmark_trace("gzip", 1300)
        assert longer.fingerprint() != traces["gzip"].fingerprint()
