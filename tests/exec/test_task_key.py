"""Canonicalization of cache-key payloads (repro.exec.cache).

The content hash behind the result cache and the resume journal must
be a pure function of configuration *content*: representation
accidents (dict insertion order, ``-0.0`` vs ``0.0``, tuple vs list)
must not fork the key space, and values with no canonical form (NaN,
infinities, non-string mapping keys) must be rejected loudly rather
than hashed into silent cache aliasing.
"""

import math

import pytest

from repro.exec import canonical_blob, canonicalize


class TestMappingOrder:
    def test_insertion_order_does_not_change_blob(self):
        forward = {"rob": 32, "lsq": 16, "alus": 4}
        backward = {}
        for key in reversed(list(forward)):
            backward[key] = forward[key]
        assert list(forward) != list(backward)
        assert canonical_blob(forward) == canonical_blob(backward)

    def test_nested_mapping_order(self):
        a = {"config": {"x": 1, "y": 2}, "trace": "gzip"}
        b = {"trace": "gzip", "config": {"y": 2, "x": 1}}
        assert canonical_blob(a) == canonical_blob(b)

    def test_non_string_keys_rejected(self):
        with pytest.raises(ValueError, match="string keys"):
            canonicalize({1: "x"})

    def test_key_order_is_sorted(self):
        assert list(canonicalize({"b": 1, "a": 2})) == ["a", "b"]


class TestFloatCanonicalization:
    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="non-finite"):
            canonicalize({"latency": float("nan")})

    def test_infinities_rejected(self):
        for bad in (float("inf"), float("-inf")):
            with pytest.raises(ValueError, match="non-finite"):
                canonicalize([bad])

    def test_negative_zero_normalized(self):
        assert canonical_blob({"x": -0.0}) == canonical_blob({"x": 0.0})
        value = canonicalize(-0.0)
        assert value == 0.0 and not math.copysign(1.0, value) < 0

    def test_ordinary_floats_unchanged(self):
        assert canonicalize(1.5) == 1.5
        assert canonicalize(-2.25) == -2.25


class TestContainers:
    def test_sets_become_sorted_lists(self):
        assert canonicalize({3, 1, 2}) == [1, 2, 3]
        assert canonicalize(frozenset({"b", "a"})) == ["a", "b"]

    def test_tuples_and_lists_converge(self):
        assert canonical_blob((1, 2, 3)) == canonical_blob([1, 2, 3])

    def test_bools_are_not_floats(self):
        # bool is an int subclass; it must survive untouched rather
        # than normalize through the float path.
        assert canonicalize(True) is True

    def test_fallback_stringifies_exotic_scalars(self):
        class Tag:
            def __str__(self):
                return "tag"

        assert canonicalize(Tag()) == "tag"

    def test_blob_is_compact_stable_json(self):
        blob = canonical_blob({"b": [2.0, {"z": 1}], "a": None})
        assert blob == b'{"a":null,"b":[2.0,{"z":1}]}'


class TestTaskKeyIntegration:
    def test_key_stable_across_payload_representation(self):
        """task_key level: two tasks whose configs differ only in
        field *ordering* of the underlying dict hash identically
        (dataclasses fix the order; this guards the hashing layer
        against regressions if the payload is ever built by hand)."""
        from repro.cpu import MachineConfig
        from repro.exec import SimTask, task_key
        from repro.workloads import benchmark_trace

        trace = benchmark_trace("gzip", 600)
        a = SimTask(config=MachineConfig(), trace=trace)
        b = SimTask(config=MachineConfig(), trace=trace)
        assert task_key(a) == task_key(b)

    def test_precompute_table_insertion_order_irrelevant(self):
        from repro.cpu import MachineConfig
        from repro.exec import SimTask, task_key
        from repro.workloads import benchmark_trace

        trace = benchmark_trace("gzip", 600)
        a = SimTask(config=MachineConfig(), trace=trace,
                    precompute_table=frozenset([3, 1, 2]))
        b = SimTask(config=MachineConfig(), trace=trace,
                    precompute_table=frozenset([2, 3, 1]))
        assert task_key(a) == task_key(b)


class TestCoreFamily:
    """Only the normalized core *family* enters a cache key: the
    equivalent batched variants share entries, while the reference
    oracle's measurements never mix with the cores it arbitrates."""

    def test_batched_variants_share_keys(self):
        from repro.cpu import MachineConfig
        from repro.exec import SimTask, task_key
        from repro.workloads import benchmark_trace

        trace = benchmark_trace("gzip", 600)
        keys = {
            task_key(SimTask(config=MachineConfig(), trace=trace,
                             core=core))
            for core in ("batched", "batched-native", "batched-python")
        }
        assert len(keys) == 1

    def test_reference_is_segregated(self):
        from repro.cpu import MachineConfig
        from repro.exec import SimTask, task_key
        from repro.workloads import benchmark_trace

        trace = benchmark_trace("gzip", 600)
        batched = task_key(SimTask(config=MachineConfig(),
                                   trace=trace, core="batched"))
        reference = task_key(SimTask(config=MachineConfig(),
                                     trace=trace, core="reference"))
        assert batched != reference

    def test_family_normalization(self):
        from repro.exec import core_family

        assert core_family("reference") == "reference"
        for core in ("batched", "batched-native", "batched-python"):
            assert core_family(core) == "batched"
