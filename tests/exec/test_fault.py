"""Tests for the engine's fault tolerance (repro.exec).

Every failure mode the supervisor claims to survive is demonstrated
here with the deterministic injector from
:mod:`repro.exec.faultinject`: transient errors retried to success,
permanent errors skipped with structured records, workers killed
mid-grid and their tasks resubmitted, hung tasks timed out, an
unhealthy pool degrading to in-process execution — all with results
bit-identical to a fault-free serial run.
"""

import multiprocessing

import pytest

from repro.core import PBExperiment
from repro.cpu import MachineConfig
from repro.exec import (
    Fault,
    FaultInjector,
    GridError,
    GridResult,
    InjectedFault,
    ResultCache,
    RetryPolicy,
    grid_tasks,
    run_grid,
)
from repro.exec import faultinject
from repro.exec.faultinject import ALWAYS
from repro.workloads import benchmark_trace

SUBSET = [
    "Reorder Buffer Entries",
    "LSQ Entries",
    "BPred Type",
    "Int ALUs",
    "L1 D-Cache Size",
    "L2 Cache Latency",
    "Memory Latency First",
]

fork_available = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(not fork_available, reason="needs fork")


@pytest.fixture(scope="module")
def traces():
    return {
        "gzip": benchmark_trace("gzip", 800),
        "mcf": benchmark_trace("mcf", 800),
    }


@pytest.fixture(scope="module")
def tasks(traces):
    configs = [
        MachineConfig(),
        MachineConfig().evolve(rob_entries=64, lsq_entries=32),
        MachineConfig().evolve(l2_latency=20),
    ]
    return grid_tasks(configs, traces)


@pytest.fixture(scope="module")
def clean(tasks):
    return [s.cycles for s in run_grid(tasks)]


def cycles(grid):
    return [s.cycles if s is not None else None for s in grid]


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="backoff"):
            RetryPolicy(backoff=-1.0)

    def test_delay_progression_capped(self):
        policy = RetryPolicy(
            max_attempts=9, backoff=1.0, backoff_factor=2.0,
            max_backoff=3.0,
        )
        assert [policy.delay(n) for n in range(1, 5)] == \
            [1.0, 2.0, 3.0, 3.0]

    def test_zero_backoff_never_sleeps(self):
        slept = []
        policy = RetryPolicy(max_attempts=3, sleep=slept.append)
        policy.pause(1)
        policy.pause(2)
        assert slept == []

    def test_pause_uses_injected_sleep(self):
        slept = []
        policy = RetryPolicy(
            max_attempts=3, backoff=0.5, sleep=slept.append,
        )
        policy.pause(1)
        policy.pause(2)
        assert slept == [0.5, 1.0]

    def test_jitter_fraction_validated(self):
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=-0.1)

    def test_jitter_is_deterministic(self):
        policy = RetryPolicy(
            max_attempts=5, backoff=1.0, jitter=0.5, jitter_seed=7,
        )
        again = RetryPolicy(
            max_attempts=5, backoff=1.0, jitter=0.5, jitter_seed=7,
        )
        schedule = [policy.delay(n, token="cell") for n in range(1, 5)]
        assert schedule == \
            [again.delay(n, token="cell") for n in range(1, 5)]

    def test_jitter_stays_inside_the_band(self):
        plain = RetryPolicy(
            max_attempts=9, backoff=1.0, backoff_factor=2.0,
            max_backoff=8.0,
        )
        jittered = RetryPolicy(
            max_attempts=9, backoff=1.0, backoff_factor=2.0,
            max_backoff=8.0, jitter=0.25, jitter_seed=3,
        )
        for failures in range(1, 6):
            for token in (None, "a-key", "b-key", 17):
                raw = plain.delay(failures)
                spread = jittered.delay(failures, token=token)
                assert raw * 0.75 <= spread <= raw

    def test_jitter_decorrelates_tokens(self):
        # The point of the token: tasks reclaimed in one sweep must
        # not republish in lockstep.
        policy = RetryPolicy(
            max_attempts=3, backoff=1.0, jitter=1.0, jitter_seed=0,
        )
        delays = {policy.delay(1, token=t) for t in range(16)}
        assert len(delays) == 16

    def test_jitter_seed_changes_the_schedule(self):
        one = RetryPolicy(
            max_attempts=3, backoff=1.0, jitter=1.0, jitter_seed=1,
        )
        two = RetryPolicy(
            max_attempts=3, backoff=1.0, jitter=1.0, jitter_seed=2,
        )
        assert one.delay(1, token="k") != two.delay(1, token="k")

    def test_jitter_unit_is_a_unit(self):
        policy = RetryPolicy(max_attempts=3, jitter=1.0, jitter_seed=9)
        for failures in range(1, 8):
            assert 0.0 <= policy.jitter_unit(failures, "t") < 1.0


class TestFaultInjector:
    def test_from_spec(self):
        injector = FaultInjector.from_spec(
            "kill:5,raise:12:2,delay:20:1:0.25,interrupt:7,"
            "raise:9:always"
        )
        assert injector.schedule[5] == Fault("kill")
        assert injector.schedule[12] == Fault("raise", 2)
        assert injector.schedule[20] == Fault("delay", 1, 0.25)
        assert injector.schedule[7] == Fault("interrupt")
        assert injector.schedule[9].attempts == ALWAYS

    def test_from_spec_rejects_garbage(self):
        with pytest.raises(ValueError):
            FaultInjector.from_spec("justanaction")
        with pytest.raises(ValueError):
            FaultInjector.from_spec("explode:3")

    def test_seeded_is_deterministic(self):
        a = FaultInjector.seeded(7, 88, raises=2, kills=1, delays=1)
        b = FaultInjector.seeded(7, 88, raises=2, kills=1, delays=1)
        assert a.schedule == b.schedule
        assert len(a.schedule) == 4

    def test_seeded_rejects_overcommit(self):
        with pytest.raises(ValueError, match="schedule"):
            FaultInjector.seeded(1, 3, raises=4)

    def test_transient_fires_only_early_attempts(self):
        injector = FaultInjector({4: Fault("raise", 2)})
        with pytest.raises(InjectedFault):
            injector.fire(4, 0)
        with pytest.raises(InjectedFault):
            injector.fire(4, 1)
        injector.fire(4, 2)          # attempt budget spent: no fault
        injector.fire(5, 0)          # unscheduled index: no fault
        assert injector.fired == [(4, 0, "raise"), (4, 1, "raise")]

    def test_stall_uses_the_separate_stall_clock(self):
        # stall_sleep is deliberately not the instrumented sleep: a
        # distributed worker rebinds it to its heartbeat-suppressing
        # sleeper, so a stall looks hung while a delay looks slow.
        slept, stalled = [], []
        injector = FaultInjector(
            {1: Fault("stall", seconds=0.5),
             2: Fault("delay", seconds=0.25)},
            sleep=slept.append, stall_sleep=stalled.append,
        )
        injector.fire(1, 0)
        injector.fire(2, 0)
        assert stalled == [0.5]
        assert slept == [0.25]
        assert injector.fired == [(1, 0, "stall"), (2, 0, "delay")]

    def test_seeded_schedules_stalls(self):
        injector = FaultInjector.seeded(
            3, 40, stalls=2, stall_seconds=0.1,
        )
        stalls = [f for f in injector.schedule.values()
                  if f.action == "stall"]
        assert len(stalls) == 2
        assert all(f.seconds == 0.1 for f in stalls)

    def test_from_spec_parses_stall(self):
        injector = FaultInjector.from_spec("stall:9:1:2.0")
        fault = injector.schedule[9]
        assert fault == Fault("stall", 1, 2.0)

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="action"):
            Fault("explode")


class TestSerialFaults:
    def test_fail_fast_propagates_original_error(self, tasks):
        with faultinject.injected(FaultInjector({1: Fault("raise")})):
            with pytest.raises(InjectedFault):
                run_grid(tasks)

    def test_retry_then_succeed_bit_identical(self, tasks, clean):
        slept = []
        policy = RetryPolicy(
            max_attempts=3, backoff=0.25, sleep=slept.append,
        )
        injector = FaultInjector({2: Fault("raise", 2)})
        with faultinject.injected(injector):
            grid = run_grid(tasks, on_error="retry", retry=policy)
        assert cycles(grid) == clean
        assert injector.fired == [(2, 0, "raise"), (2, 1, "raise")]
        assert slept == [0.25, 0.5]

    def test_retry_exhaustion_raises_grid_error(self, tasks):
        with faultinject.injected(
            FaultInjector({0: Fault("raise", ALWAYS)})
        ):
            with pytest.raises(GridError) as info:
                run_grid(
                    tasks, on_error="retry",
                    retry=RetryPolicy(max_attempts=2),
                )
        record = info.value.record
        assert record.index == 0
        assert record.kind == "error"
        assert record.attempts == 2
        assert isinstance(info.value.__cause__, InjectedFault)

    def test_skip_returns_partial_grid(self, tasks, clean):
        with faultinject.injected(
            FaultInjector({1: Fault("raise", ALWAYS)})
        ):
            grid = run_grid(tasks, on_error="skip")
        assert isinstance(grid, GridResult)
        assert not grid.ok
        assert grid[1] is None
        assert grid.failed_indices() == [1]
        record = grid.failure_at(1)
        assert record.kind == "error"
        assert record.error_type == "InjectedFault"
        expected = [c if i != 1 else None for i, c in enumerate(clean)]
        assert cycles(grid) == expected

    def test_skip_progress_reaches_total(self, tasks):
        seen = []
        with faultinject.injected(
            FaultInjector({0: Fault("raise", ALWAYS)})
        ):
            run_grid(
                tasks, on_error="skip",
                progress=lambda d, t: seen.append((d, t)),
            )
        assert seen[-1] == (len(tasks), len(tasks))

    def test_injected_interrupt_propagates(self, tasks):
        with faultinject.injected(
            FaultInjector({3: Fault("interrupt")})
        ):
            with pytest.raises(KeyboardInterrupt):
                run_grid(tasks)

    def test_stall_is_invisible_to_results(self, tasks, clean):
        injector = FaultInjector(
            {2: Fault("stall", seconds=30.0)},
            stall_sleep=lambda s: None,
        )
        with faultinject.injected(injector):
            grid = run_grid(tasks)
        assert cycles(grid) == clean
        assert injector.fired == [(2, 0, "stall")]

    def test_invalid_on_error_rejected(self, tasks):
        with pytest.raises(ValueError, match="on_error"):
            run_grid(tasks, on_error="explode")


@needs_fork
class TestPoolFaults:
    def test_worker_kill_resubmits_bit_identical(self, tasks, clean):
        with faultinject.injected(FaultInjector({3: Fault("kill")})):
            grid = run_grid(tasks, jobs=2)
        assert cycles(grid) == clean

    def test_timeout_kills_hung_task_then_retries(self, tasks, clean):
        injector = FaultInjector({0: Fault("delay", 1, seconds=60.0)})
        with faultinject.injected(injector):
            grid = run_grid(
                tasks, jobs=2, timeout=1.0, on_error="retry",
            )
        assert cycles(grid) == clean

    def test_timeout_exhaustion_is_recorded(self, tasks, clean):
        injector = FaultInjector(
            {0: Fault("delay", ALWAYS, seconds=60.0)}
        )
        with faultinject.injected(injector):
            grid = run_grid(
                tasks, jobs=2, timeout=0.5, on_error="skip",
                retry=RetryPolicy(max_attempts=2),
            )
        record = grid.failure_at(0)
        assert record is not None and record.kind == "timeout"
        expected = [c if i != 0 else None for i, c in enumerate(clean)]
        assert cycles(grid) == expected

    def test_pool_error_skip_is_partial(self, tasks, clean):
        with faultinject.injected(
            FaultInjector({4: Fault("raise", ALWAYS)})
        ):
            grid = run_grid(
                tasks, jobs=2, on_error="skip",
                retry=RetryPolicy(max_attempts=2),
            )
        assert grid.failed_indices() == [4]
        expected = [c if i != 4 else None for i, c in enumerate(clean)]
        assert cycles(grid) == expected

    def test_unhealthy_pool_degrades_to_in_process(self, tasks, clean):
        injector = FaultInjector({
            0: Fault("kill"), 2: Fault("kill"), 4: Fault("kill"),
        })
        with faultinject.injected(injector):
            with pytest.warns(RuntimeWarning, match="unhealthy"):
                grid = run_grid(
                    tasks, jobs=2, on_error="retry",
                    retry=RetryPolicy(max_attempts=4),
                    max_worker_deaths=1,
                )
        assert cycles(grid) == clean


class TestCacheFaults:
    def test_contains_rejects_torn_entry(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        (tmp_path / "cache" / "deadbeef.pkl").write_bytes(b"torn!")
        assert "deadbeef" not in cache
        assert cache.corrupt == 1
        assert not (tmp_path / "cache" / "deadbeef.pkl").exists()

    def test_get_counts_corrupt_entries(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        (tmp_path / "cache" / "deadbeef.pkl").write_bytes(b"torn!")
        assert cache.get("deadbeef") is None
        assert cache.corrupt == 1
        assert cache.misses == 1

    def test_contains_agrees_with_get(self, tmp_path, tasks):
        from repro.exec import task_key

        cache = ResultCache(tmp_path / "cache")
        key = task_key(tasks[0])
        run_grid(tasks[:1], cache=cache)
        fresh = ResultCache(tmp_path / "cache")
        assert key in fresh
        assert fresh.get(key) is not None

    def test_failing_cache_put_warns_once_and_continues(
        self, tmp_path, tasks, clean
    ):
        class ReadOnlyCache(ResultCache):
            def put(self, key, stats):
                raise OSError("disk full")

        cache = ReadOnlyCache(tmp_path / "cache")
        with pytest.warns(RuntimeWarning, match="cache") as warned:
            grid = run_grid(tasks, cache=cache)
        assert cycles(grid) == clean
        cache_warnings = [
            w for w in warned
            if "cache" in str(w.message)
        ]
        assert len(cache_warnings) == 1


class TestPBExperimentFaults:
    def test_skip_names_failed_cell(self, traces):
        experiment = PBExperiment(traces, parameter_names=SUBSET)
        n_bench = len(traces)
        # Fail gzip's cell of design row 3 permanently.
        index = 3 * n_bench + list(traces).index("gzip")
        with faultinject.injected(
            FaultInjector({index: Fault("raise", ALWAYS)})
        ):
            result = experiment.run(on_error="skip")
        assert not result.complete
        assert result.failed_cells() == [(3, "gzip")]
        assert "row 3" in result.failures[0].describe()
        assert result.responses["gzip"][3] is None
        # The incomplete benchmark has no effect table; the complete
        # one still supports the full ranking machinery.
        assert "gzip" not in result.effects
        assert "mcf" in result.effects
        assert result.ranks()["mcf"]

    def test_retry_makes_experiment_bit_identical(self, traces):
        experiment = PBExperiment(traces, parameter_names=SUBSET)
        reference = experiment.run()
        with faultinject.injected(
            FaultInjector({5: Fault("raise", 2), 20: Fault("raise")})
        ):
            retried = experiment.run(
                on_error="retry", retry=RetryPolicy(max_attempts=3),
            )
        assert retried.responses == reference.responses
        for bench in reference.responses:
            assert retried.effects[bench].effects == \
                reference.effects[bench].effects
        assert retried.ranks() == reference.ranks()


@pytest.mark.slow
class TestAcceptance:
    """The issue's acceptance scenario at full 88-run scale.

    A seeded fault-injection run — one worker kill, two transient
    task failures, and one Ctrl-C/resume cycle — of the 88-run PB
    screen must produce effects and sum-of-ranks bit-identical to a
    fault-free serial run.
    """

    @needs_fork
    def test_faulty_88_run_screen_bit_identical(self, tmp_path):
        from repro.core import rank_parameters_from_result

        traces = {"gzip": benchmark_trace("gzip", 800)}
        experiment = PBExperiment(traces)
        reference = experiment.run()           # fault-free, serial

        journal = tmp_path / "screen.journal"
        # Phase 1: Ctrl-C (injected) at cell 30 of the journaled run.
        with faultinject.injected(
            FaultInjector({30: Fault("interrupt")})
        ):
            with pytest.raises(KeyboardInterrupt):
                experiment.run(journal=journal)

        # Phase 2: resume on a worker pool, with a worker kill and
        # two transient task failures along the way.
        with faultinject.injected(FaultInjector({
            45: Fault("kill"),
            50: Fault("raise"),
            60: Fault("raise"),
        })):
            result = experiment.run(
                jobs=2, journal=journal, on_error="retry",
                retry=RetryPolicy(max_attempts=3),
            )

        assert result.complete
        assert result.responses == reference.responses
        for bench in reference.responses:
            assert result.effects[bench].effects == \
                reference.effects[bench].effects
        ranking = rank_parameters_from_result(result)
        clean = rank_parameters_from_result(reference)
        assert ranking.factors == clean.factors
        assert ranking.sums == clean.sums


class TestSweepFaults:
    def test_skip_drops_value_from_best(self, traces):
        from repro.core import sweep

        values = [32, 64, 128]
        reference = sweep(
            traces, "rob_entries", values,
        )
        # Fail every benchmark cell of the best value permanently.
        best_index = values.index(reference.best_value())
        n_bench = len(traces)
        schedule = {
            best_index * n_bench + j: Fault("raise", ALWAYS)
            for j in range(n_bench)
        }
        with faultinject.injected(FaultInjector(schedule)):
            partial = sweep(
                traces, "rob_entries", values, on_error="skip",
            )
        assert len(partial.failures) == n_bench
        totals = partial.total_cycles()
        assert totals[best_index] is None
        assert partial.best_value() != reference.best_value()
        assert "failed" in partial.table()

    def test_all_values_failed_raises(self, traces):
        from repro.core import sweep

        n_cells = 2 * len(traces)
        schedule = {i: Fault("raise", ALWAYS) for i in range(n_cells)}
        with faultinject.injected(FaultInjector(schedule)):
            partial = sweep(
                traces, "rob_entries", [32, 64], on_error="skip",
            )
        with pytest.raises(ValueError, match="failed"):
            partial.best_value()
