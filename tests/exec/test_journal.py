"""Tests for the checkpoint journal (repro.exec.journal).

The journal's contract: every recorded cell survives any interruption
of the writing process; loading tolerates a torn final line; resuming
from a journal re-simulates only the missing cells and yields results
bit-identical to an uninterrupted run.
"""

import pytest

from repro.core import PBExperiment, rank_parameters_from_result
from repro.cpu import MachineConfig
from repro.exec import (
    Fault,
    FaultInjector,
    Journal,
    grid_tasks,
    run_grid,
    task_key,
)
from repro.exec import faultinject
import repro.exec.engine as engine
from repro.workloads import benchmark_trace

SUBSET = [
    "Reorder Buffer Entries",
    "LSQ Entries",
    "BPred Type",
    "Int ALUs",
    "L1 D-Cache Size",
    "L2 Cache Latency",
    "Memory Latency First",
]


@pytest.fixture(scope="module")
def traces():
    return {
        "gzip": benchmark_trace("gzip", 800),
        "mcf": benchmark_trace("mcf", 800),
    }


@pytest.fixture(scope="module")
def tasks(traces):
    configs = [
        MachineConfig(),
        MachineConfig().evolve(rob_entries=64),
        MachineConfig().evolve(l2_latency=20),
    ]
    return grid_tasks(configs, traces)


def _counting(monkeypatch):
    calls = {"n": 0}
    real = engine.simulate

    def counting_simulate(*args, **kwargs):
        calls["n"] += 1
        return real(*args, **kwargs)

    monkeypatch.setattr(engine, "simulate", counting_simulate)
    return calls


class TestJournalFile:
    def test_roundtrip(self, tmp_path, tasks):
        path = tmp_path / "grid.journal"
        stats = run_grid(tasks[:1])[0]
        key = task_key(tasks[0])
        with Journal(path) as journal:
            journal.record(key, stats)
        reloaded = Journal(path)
        assert len(reloaded) == 1
        assert key in reloaded
        assert reloaded.get(key) == stats
        assert reloaded.corrupt == 0

    def test_record_is_idempotent(self, tmp_path, tasks):
        path = tmp_path / "grid.journal"
        stats = run_grid(tasks[:1])[0]
        journal = Journal(path)
        journal.record("k", stats)
        journal.record("k", stats)
        journal.close()
        assert len(Journal(path)) == 1

    def test_torn_final_line_is_dropped(self, tmp_path, tasks):
        path = tmp_path / "grid.journal"
        stats = run_grid(tasks[:1])[0]
        with Journal(path) as journal:
            journal.record("a", stats)
            journal.record("b", stats)
        # Simulate a crash mid-write: truncate into the last line.
        blob = path.read_bytes()
        path.write_bytes(blob[:-20])
        reloaded = Journal(path)
        assert reloaded.corrupt == 1
        assert "a" in reloaded and "b" not in reloaded

    def test_checksum_mismatch_is_dropped(self, tmp_path, tasks):
        path = tmp_path / "grid.journal"
        stats = run_grid(tasks[:1])[0]
        with Journal(path) as journal:
            journal.record("a", stats)
        line = path.read_text()
        flipped = line.replace('"sha": "', '"sha": "0000', 1)
        path.write_text(flipped)
        reloaded = Journal(path)
        assert reloaded.corrupt == 1
        assert len(reloaded) == 0

    def test_missing_file_is_empty(self, tmp_path):
        journal = Journal(tmp_path / "nothing.journal")
        assert len(journal) == 0
        assert journal.corrupt == 0


class TestGridResume:
    def test_interrupted_grid_resumes_where_it_stopped(
        self, tmp_path, tasks, monkeypatch
    ):
        path = tmp_path / "grid.journal"
        clean = [s.cycles for s in run_grid(tasks)]
        stop_at = 4
        with faultinject.injected(
            FaultInjector({stop_at: Fault("interrupt")})
        ):
            with pytest.raises(KeyboardInterrupt):
                run_grid(tasks, journal=path)
        assert len(Journal(path)) == stop_at
        calls = _counting(monkeypatch)
        resumed = run_grid(tasks, journal=path)
        assert calls["n"] == len(tasks) - stop_at
        assert [s.cycles for s in resumed] == clean
        assert len(Journal(path)) == len(tasks)

    def test_journal_preload_feeds_the_cache(self, tmp_path, tasks):
        from repro.exec import ResultCache

        path = tmp_path / "grid.journal"
        run_grid(tasks, journal=path)
        cache = ResultCache()
        run_grid(tasks, journal=Journal(path), cache=cache)
        assert all(task_key(t) in cache for t in tasks)

    def test_cache_hits_are_journaled(self, tmp_path, tasks):
        from repro.exec import ResultCache

        cache = ResultCache(tmp_path / "cache")
        run_grid(tasks, cache=cache)
        path = tmp_path / "grid.journal"
        run_grid(tasks, cache=cache, journal=path)
        assert len(Journal(path)) == len(tasks)

    def test_journal_accepts_path_string(self, tmp_path, tasks):
        path = str(tmp_path / "grid.journal")
        run_grid(tasks, journal=path)
        assert len(Journal(path)) == len(tasks)


class TestExperimentResume:
    def test_screen_resume_bit_identical(self, tmp_path, traces,
                                         monkeypatch):
        """The acceptance shape: Ctrl-C mid-screen, resume, compare."""
        experiment = PBExperiment(traces, parameter_names=SUBSET)
        reference = experiment.run()
        path = tmp_path / "screen.journal"
        with faultinject.injected(
            FaultInjector({10: Fault("interrupt")})
        ):
            with pytest.raises(KeyboardInterrupt):
                experiment.run(journal=path)
        assert len(Journal(path)) == 10
        calls = _counting(monkeypatch)
        resumed = experiment.run(journal=path)
        total = reference.design.n_runs * len(traces)
        assert calls["n"] == total - 10
        assert resumed.responses == reference.responses
        for bench in reference.responses:
            assert resumed.effects[bench].effects == \
                reference.effects[bench].effects
        ranking = rank_parameters_from_result(resumed)
        clean_ranking = rank_parameters_from_result(reference)
        assert ranking.factors == clean_ranking.factors
        assert ranking.sums == clean_ranking.sums


class TestInterleavedWriters:
    """Concurrent appenders must never tear each other's lines.

    The distributed broker and a straggling worker — or two resumed
    runs racing on one run directory — may append to the same journal
    file simultaneously.  ``Journal.record`` serialises the write
    with an exclusive ``flock``; this test runs real concurrent
    processes against one file and then proves every line parses.
    """

    WRITER = (
        "import sys\n"
        "from repro.exec import Journal\n"
        "tag, count, path = sys.argv[1], int(sys.argv[2]), sys.argv[3]\n"
        "with Journal(path) as journal:\n"
        "    for n in range(count):\n"
        "        journal.record(\n"
        "            f'{tag}-{n:04d}',\n"
        "            {'tag': tag, 'n': n, 'pad': 'x' * 512},\n"
        "        )\n"
    )

    def test_concurrent_appends_never_tear(self, tmp_path):
        import os
        import subprocess
        import sys
        from pathlib import Path

        import repro
        from repro.exec import scan_journal

        path = tmp_path / "shared.journal"
        env = dict(os.environ)
        src = str(Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = os.pathsep.join(
            [src] + [p for p in
                     env.get("PYTHONPATH", "").split(os.pathsep) if p]
        )
        tags = ("alpha", "beta", "gamma")
        count = 200
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", self.WRITER,
                 tag, str(count), str(path)],
                env=env,
            )
            for tag in tags
        ]
        assert [proc.wait(timeout=120) for proc in procs] == [0, 0, 0]

        scan = scan_journal(path)
        assert scan.total == len(tags) * count
        assert scan.valid == scan.total
        assert scan.invalid == ()
        assert not scan.torn_tail

        journal = Journal(path)
        assert len(journal) == len(tags) * count
        assert journal.corrupt == 0
        for tag in tags:
            for n in range(count):
                assert journal.get(f"{tag}-{n:04d}")["n"] == n
