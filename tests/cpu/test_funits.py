"""Tests for the functional-unit pool (repro.cpu.funits)."""

import pytest

from repro.cpu import MachineConfig, OpClass
from repro.cpu.funits import FunctionalUnitPool, UnitClass


class TestUnitClass:
    def test_single_unit_occupancy(self):
        unit = UnitClass("test", 1)
        assert unit.can_issue(0)
        unit.issue(0, interval=3)
        assert not unit.can_issue(1)
        assert not unit.can_issue(2)
        assert unit.can_issue(3)

    def test_multiple_units(self):
        unit = UnitClass("test", 2)
        unit.issue(0, 5)
        assert unit.can_issue(0)
        unit.issue(0, 5)
        assert not unit.can_issue(0)

    def test_issue_without_free_unit_raises(self):
        unit = UnitClass("test", 1)
        unit.issue(0, 10)
        with pytest.raises(RuntimeError):
            unit.issue(1, 10)

    def test_counts(self):
        unit = UnitClass("test", 4)
        for i in range(3):
            unit.issue(i, 1)
        assert unit.issued == 3

    def test_needs_positive_count(self):
        with pytest.raises(ValueError):
            UnitClass("bad", 0)


class TestPoolDispatch:
    def test_latencies_from_config(self):
        cfg = MachineConfig(
            int_alu_latency=2, fp_div_latency=35, int_mult_latency=15
        )
        pool = FunctionalUnitPool(cfg)
        assert pool.issue(int(OpClass.IALU), 0) == 2
        assert pool.issue(int(OpClass.FDIV), 0) == 35
        assert pool.issue(int(OpClass.IMULT), 0) == 15

    def test_pipelined_alu_throughput(self):
        """Int ALU interval 1: back-to-back issue every cycle."""
        cfg = MachineConfig(int_alus=1, int_alu_latency=2)
        pool = FunctionalUnitPool(cfg)
        pool.issue(int(OpClass.IALU), 0)
        assert pool.can_issue(int(OpClass.IALU), 1)

    def test_unpipelined_divider(self):
        """Table 7: divide throughput equals divide latency."""
        cfg = MachineConfig(int_mult_div_units=1, int_div_latency=20)
        pool = FunctionalUnitPool(cfg)
        pool.issue(int(OpClass.IDIV), 0)
        assert not pool.can_issue(int(OpClass.IDIV), 10)
        assert pool.can_issue(int(OpClass.IDIV), 20)

    def test_mult_and_div_share_units(self):
        cfg = MachineConfig(int_mult_div_units=1, int_div_latency=20)
        pool = FunctionalUnitPool(cfg)
        pool.issue(int(OpClass.IDIV), 0)
        assert not pool.can_issue(int(OpClass.IMULT), 5)

    def test_branches_use_int_alu(self):
        cfg = MachineConfig(int_alus=1, int_alu_interval=1,
                            int_alu_latency=1)
        pool = FunctionalUnitPool(cfg)
        unit, _, _ = pool.requirements(int(OpClass.BRANCH))
        assert unit is pool.int_alu

    def test_memory_ports_limit_loads(self):
        cfg = MachineConfig(memory_ports=1)
        pool = FunctionalUnitPool(cfg)
        pool.issue(int(OpClass.LOAD), 0)
        assert not pool.can_issue(int(OpClass.STORE), 0)
        assert pool.can_issue(int(OpClass.STORE), 1)

    def test_fp_units_independent_of_int(self):
        cfg = MachineConfig(int_alus=1, fp_alus=1)
        pool = FunctionalUnitPool(cfg)
        pool.issue(int(OpClass.IALU), 0)
        assert pool.can_issue(int(OpClass.FALU), 0)

    def test_utilization_report(self):
        pool = FunctionalUnitPool(MachineConfig())
        pool.issue(int(OpClass.IALU), 0)
        pool.issue(int(OpClass.LOAD), 0)
        util = pool.utilization()
        assert util["IntALU"] == 1
        assert util["MemPort"] == 1
        assert util["FPMultDiv"] == 0

    def test_fp_sqrt_unpipelined(self):
        cfg = MachineConfig(fp_mult_div_units=1, fp_sqrt_latency=35)
        pool = FunctionalUnitPool(cfg)
        pool.issue(int(OpClass.FSQRT), 0)
        assert not pool.can_issue(int(OpClass.FMULT), 30)
        assert pool.can_issue(int(OpClass.FMULT), 35)
