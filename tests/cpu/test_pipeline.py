"""Tests for the out-of-order pipeline (repro.cpu.pipeline).

Traces are built by hand so each test isolates one timing mechanism.
"""

import pytest

from repro.cpu import (
    BranchKind,
    Instruction,
    MachineConfig,
    OpClass,
    Pipeline,
    SimulationError,
    simulate,
)
from repro.workloads.trace import Trace

#: A generous machine that removes every bottleneck except the one a
#: test wants to exercise.
WIDE = MachineConfig(
    rob_entries=64, lsq_entries=64, int_alus=4, fp_alus=4,
    memory_ports=4, ifq_entries=32, branch_predictor="perfect",
    l1i_size=128 * 1024, l1d_size=128 * 1024, l1d_latency=1,
)


def loop_pcs(n, body=8):
    """PCs cycling around a tiny code loop (keeps the I-cache warm)."""
    return [0x400000 + 4 * (i % body) for i in range(n)]


def ialu(pc, dst=0, src1=-1, src2=-1):
    return Instruction(pc=pc, op=OpClass.IALU, src1=src1, src2=src2, dst=dst)


def trace_of(instructions):
    return Trace.from_instructions(instructions, name="unit")


class TestCompletionBasics:
    def test_all_instructions_commit(self):
        pcs = loop_pcs(50)
        stats = simulate(WIDE, trace_of([ialu(pc) for pc in pcs]))
        assert stats.instructions == 50

    def test_deterministic(self):
        tr = trace_of([ialu(pc, dst=i % 8) for i, pc in
                       enumerate(loop_pcs(200))])
        a = simulate(MachineConfig(), tr)
        b = simulate(MachineConfig(), tr)
        assert a.cycles == b.cycles
        assert a.l1d.misses == b.l1d.misses

    def test_max_cycles_guard(self):
        tr = trace_of([ialu(pc) for pc in loop_pcs(100)])
        with pytest.raises(SimulationError):
            simulate(WIDE, tr, max_cycles=5)


class TestThroughput:
    def test_independent_ops_reach_width(self):
        """Independent IALUs on a 4-wide machine with 4 ALUs: IPC ~4."""
        instrs = [ialu(pc, dst=1 + (i % 29))
                  for i, pc in enumerate(loop_pcs(2000))]
        stats = simulate(WIDE, trace_of(instrs), warmup=True)
        assert stats.ipc > 3.0

    def test_single_alu_caps_ipc_at_one(self):
        cfg = WIDE.evolve(int_alus=1)
        instrs = [ialu(pc, dst=1 + (i % 29))
                  for i, pc in enumerate(loop_pcs(1000))]
        stats = simulate(cfg, trace_of(instrs), warmup=True)
        assert 0.8 < stats.ipc <= 1.05

    def test_dependence_chain_serializes(self):
        """r1 = r1 + ... repeated: one op per latency period."""
        instrs = [ialu(pc, dst=1, src1=1)
                  for pc in loop_pcs(500)]
        one_cycle = simulate(WIDE.evolve(int_alu_latency=1),
                             trace_of(instrs), warmup=True)
        two_cycle = simulate(WIDE.evolve(int_alu_latency=2),
                             trace_of(instrs), warmup=True)
        assert one_cycle.ipc <= 1.05
        # Doubling the latency roughly doubles the critical path.
        assert two_cycle.cycles > 1.7 * one_cycle.cycles

    def test_width_limits_even_with_many_units(self):
        cfg = WIDE.evolve(int_alus=4)   # width stays 4
        instrs = [ialu(pc, dst=1 + (i % 29))
                  for i, pc in enumerate(loop_pcs(1000))]
        stats = simulate(cfg, trace_of(instrs), warmup=True)
        assert stats.ipc <= 4.05


class TestWindowLimits:
    def _load_heavy(self, n=300):
        out = []
        for i, pc in enumerate(loop_pcs(n)):
            if i % 2 == 0:
                out.append(Instruction(
                    pc=pc, op=OpClass.LOAD, dst=1 + (i % 8),
                    mem_addr=0x10000000 + (i * 128) % (1 << 22),
                ))
            else:
                out.append(ialu(pc, dst=9 + (i % 8)))
        return trace_of(out)

    def test_bigger_rob_never_slower(self):
        tr = self._load_heavy()
        small = simulate(WIDE.evolve(rob_entries=8, lsq_entries=8), tr)
        big = simulate(WIDE.evolve(rob_entries=64, lsq_entries=64), tr)
        assert big.cycles <= small.cycles

    def test_rob_stall_counted(self):
        tr = self._load_heavy()
        small = simulate(WIDE.evolve(rob_entries=8, lsq_entries=8), tr)
        assert small.dispatch_stall_rob > 0

    def test_tiny_lsq_stalls_dispatch(self):
        tr = self._load_heavy()
        stats = simulate(WIDE.evolve(rob_entries=64, lsq_entries=2), tr)
        assert stats.dispatch_stall_lsq > 0

    def test_rob_occupancy_bounded(self):
        tr = self._load_heavy()
        stats = simulate(WIDE.evolve(rob_entries=8, lsq_entries=8), tr)
        assert stats.average_rob_occupancy <= 8.0


class TestMemoryTiming:
    def test_load_latency_on_dependent_chain(self):
        """Loads feeding the next load's address: memory latency visible."""
        instrs = []
        for i, pc in enumerate(loop_pcs(200)):
            instrs.append(Instruction(
                pc=pc, op=OpClass.LOAD, src1=1, dst=1,
                mem_addr=0x10000000 + (i * 4096) % (1 << 24),
            ))
        tr = trace_of(instrs)
        fast = simulate(WIDE.evolve(mem_latency_first=50), tr)
        slow = simulate(WIDE.evolve(mem_latency_first=200), tr)
        assert slow.cycles > 1.5 * fast.cycles

    def test_store_then_load_dependency(self):
        """A load must wait for the in-flight store to the same address."""
        pcs = loop_pcs(6)
        instrs = [
            ialu(pcs[0], dst=1),
            Instruction(pc=pcs[1], op=OpClass.STORE, src1=1, src2=2,
                        mem_addr=0x10000040),
            Instruction(pc=pcs[2], op=OpClass.LOAD, dst=3,
                        mem_addr=0x10000040),
            ialu(pcs[3], dst=4, src1=3),
        ]
        stats = simulate(WIDE, trace_of(instrs))
        assert stats.instructions == 4  # completes without deadlock

    def test_l1d_hit_latency_visible(self):
        instrs = []
        for i, pc in enumerate(loop_pcs(400)):
            if i % 2 == 0:
                instrs.append(Instruction(
                    pc=pc, op=OpClass.LOAD, dst=1, mem_addr=0x10000000,
                ))
            else:
                instrs.append(ialu(pc, dst=2, src1=1))
        tr = trace_of(instrs)
        fast = simulate(WIDE.evolve(l1d_latency=1), tr, warmup=True)
        slow = simulate(WIDE.evolve(l1d_latency=4), tr, warmup=True)
        assert slow.cycles > fast.cycles

    def test_memory_ports_limit(self):
        instrs = [Instruction(pc=pc, op=OpClass.LOAD, dst=1 + (i % 8),
                              mem_addr=0x10000000 + 8 * (i % 64))
                  for i, pc in enumerate(loop_pcs(600))]
        tr = trace_of(instrs)
        one = simulate(WIDE.evolve(memory_ports=1), tr, warmup=True)
        four = simulate(WIDE.evolve(memory_ports=4), tr, warmup=True)
        assert one.cycles > 2 * four.cycles


def conditional(pc, taken, target):
    return Instruction(pc=pc, op=OpClass.BRANCH,
                       branch_kind=BranchKind.CONDITIONAL,
                       taken=taken, target=target if taken else -1)


class TestBranchTiming:
    def _branchy(self, n=400, period=2):
        """A loop with one conditional branch per iteration; the branch
        alternates with the given period (learnable by the 2-level
        predictor when period is 2)."""
        instrs = []
        body = 6
        base = 0x400000
        for i in range(n):
            for j in range(body - 1):
                instrs.append(ialu(base + 4 * j, dst=1 + (j % 4)))
            taken = (i % period) == 0
            instrs.append(conditional(base + 4 * (body - 1), taken, base))
        return trace_of(instrs)

    def test_perfect_faster_than_2level(self):
        tr = self._branchy(period=3)
        two = simulate(MachineConfig(branch_predictor="2level"), tr,
                       warmup=True)
        perfect = simulate(MachineConfig(branch_predictor="perfect"), tr,
                           warmup=True)
        assert perfect.cycles < two.cycles
        assert perfect.mispredictions == 0

    def test_penalty_scales_cost(self):
        tr = self._branchy(period=3)
        cheap = simulate(MachineConfig(mispredict_penalty=2), tr,
                         warmup=True)
        dear = simulate(MachineConfig(mispredict_penalty=10), tr,
                        warmup=True)
        assert dear.cycles > cheap.cycles
        assert cheap.mispredictions == dear.mispredictions

    def test_branch_stats_counted(self):
        tr = self._branchy(n=100)
        stats = simulate(MachineConfig(), tr, warmup=True)
        assert stats.branches == 100
        assert 0 <= stats.mispredictions <= stats.branches

    def test_perfect_has_no_misfetches(self):
        tr = self._branchy(n=100)
        stats = simulate(MachineConfig(branch_predictor="perfect"), tr)
        assert stats.btb_misfetches == 0


class TestCallsAndReturns:
    def _call_chain(self, depth, repetitions=30):
        """Nested calls `depth` deep, then matching returns, repeated."""
        instrs = []
        base = 0x400000
        fn_base = 0x500000
        for _ in range(repetitions):
            # Call chain
            for d in range(depth):
                pc = (base if d == 0 else fn_base + d * 0x100)
                instrs.append(Instruction(
                    pc=pc, op=OpClass.BRANCH, branch_kind=BranchKind.CALL,
                    taken=True, target=fn_base + (d + 1) * 0x100,
                ))
            # Unwind
            for d in range(depth, 0, -1):
                pc = fn_base + d * 0x100
                ret_to = (base if d == 1 else fn_base + (d - 1) * 0x100) + 4
                instrs.append(ialu(pc + 4, dst=1))
                instrs.append(Instruction(
                    pc=pc + 8, op=OpClass.BRANCH,
                    branch_kind=BranchKind.RETURN, taken=True,
                    target=ret_to,
                ))
            instrs.append(ialu(base + 4, dst=2))
        return trace_of(instrs)

    def test_deep_ras_predicts_returns(self):
        tr = self._call_chain(depth=3)
        stats = simulate(MachineConfig(ras_entries=64), tr, warmup=True)
        assert stats.ras_mispredictions == 0

    def test_shallow_ras_corrupted_by_deep_chains(self):
        tr = self._call_chain(depth=8)
        shallow = simulate(MachineConfig(ras_entries=4), tr, warmup=True)
        deep = simulate(MachineConfig(ras_entries=64), tr, warmup=True)
        assert shallow.ras_mispredictions > 0
        assert deep.ras_mispredictions == 0
        assert shallow.cycles > deep.cycles


class TestWarmup:
    def test_warmup_removes_compulsory_misses(self):
        instrs = [Instruction(pc=pc, op=OpClass.LOAD, dst=1,
                              mem_addr=0x10000000 + 64 * i)
                  for i, pc in enumerate(loop_pcs(100))]
        tr = trace_of(instrs)
        cold = simulate(WIDE, tr, warmup=False)
        warm = simulate(WIDE, tr, warmup=True)
        assert warm.l1d.misses == 0
        assert cold.l1d.misses == 100
        assert warm.cycles < cold.cycles

    def test_warmup_stats_reset(self):
        tr = trace_of([ialu(pc) for pc in loop_pcs(40)])
        pipeline = Pipeline(WIDE)
        pipeline.warm(tr)
        assert pipeline.hierarchy.l1i.stats.accesses == 0
