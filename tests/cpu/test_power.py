"""Tests for the energy proxy (repro.cpu.power)."""

import pytest

from repro.cpu import (
    DEFAULT_ENERGY_MODEL,
    EnergyModel,
    MachineConfig,
    energy_delay_response,
    energy_response,
    estimate_energy,
    simulate,
)
from repro.workloads import benchmark_trace


@pytest.fixture(scope="module")
def run():
    cfg = MachineConfig()
    trace = benchmark_trace("gzip", 3000)
    return simulate(cfg, trace, warmup=True), cfg, trace


class TestEnergyModel:
    def test_cache_energy_grows_with_size(self):
        m = DEFAULT_ENERGY_MODEL
        assert m.cache_access_energy(128 * 1024, 4) > \
            m.cache_access_energy(4 * 1024, 4)

    def test_cache_energy_grows_with_assoc(self):
        m = DEFAULT_ENERGY_MODEL
        assert m.cache_access_energy(16 * 1024, 8) > \
            m.cache_access_energy(16 * 1024, 1)

    def test_fully_associative_expensive(self):
        m = DEFAULT_ENERGY_MODEL
        assert m.cache_access_energy(16 * 1024, 0) > \
            m.cache_access_energy(16 * 1024, 2)


class TestEstimate:
    def test_components_present(self, run):
        stats, cfg, _ = run
        breakdown = estimate_energy(stats, cfg)
        assert set(breakdown.components) == {
            "core", "caches", "tlbs", "dram", "recovery", "static",
        }
        assert breakdown.total > 0

    def test_all_components_nonnegative(self, run):
        stats, cfg, _ = run
        for value in estimate_energy(stats, cfg).components.values():
            assert value >= 0.0

    def test_bigger_l2_costs_static_energy(self, run):
        stats, cfg, trace = run
        big = MachineConfig(l2_size=8 * 1024 * 1024)
        big_stats = simulate(big, trace, warmup=True)
        assert energy_response(big_stats, big) > \
            energy_response(stats, cfg)

    def test_perfect_bpred_saves_recovery_energy(self, run):
        stats, cfg, trace = run
        perfect = MachineConfig(branch_predictor="perfect")
        perfect_stats = simulate(perfect, trace, warmup=True)
        base = estimate_energy(stats, cfg).components["recovery"]
        saved = estimate_energy(perfect_stats,
                                perfect).components["recovery"]
        assert saved == 0.0 < base

    def test_custom_model(self, run):
        stats, cfg, _ = run
        hot = EnergyModel(dram_access=1e6)
        cold = EnergyModel(dram_access=0.0)
        assert estimate_energy(stats, cfg, hot).total >= \
            estimate_energy(stats, cfg, cold).total

    def test_summary_and_dominant(self, run):
        stats, cfg, _ = run
        breakdown = estimate_energy(stats, cfg)
        assert breakdown.dominant() in breakdown.components
        assert "total energy" in breakdown.summary()

    def test_energy_delay(self, run):
        stats, cfg, _ = run
        assert energy_delay_response(stats, cfg) == pytest.approx(
            energy_response(stats, cfg) * stats.cycles
        )


class TestEnergyScreen:
    def test_pb_experiment_on_energy(self):
        """The same PB machinery screens on energy: capacity-heavy
        parameters (L2 size) matter for energy even where they were
        performance-neutral."""
        from repro.core import PBExperiment, rank_parameters_from_result

        factors = ["Reorder Buffer Entries", "L2 Cache Size",
                   "L2 Cache Latency", "Int ALUs", "BPred Type",
                   "I-TLB Size", "L1 D-Cache Size"]
        traces = {"gzip": benchmark_trace("gzip", 1500)}
        cycles = PBExperiment(traces, parameter_names=factors).run()
        energy = PBExperiment(traces, parameter_names=factors,
                              response=energy_response).run()
        rank_c = rank_parameters_from_result(cycles)
        rank_e = rank_parameters_from_result(energy)
        # gzip fits even the small L2, so L2 size is performance-noise
        # but an energy headliner.
        assert rank_e.rank_of("L2 Cache Size", "gzip") <= 2
        assert rank_c.rank_of("L2 Cache Size", "gzip") > \
            rank_e.rank_of("L2 Cache Size", "gzip")
