"""Tests for the simulation watchdogs (hang detection, instruction
budget, statistics integrity) wired into the pipeline."""

import dataclasses
import math

import pytest

from repro.cpu import HANG_CYCLES, MachineConfig, simulate
from repro.cpu.pipeline import SimulationError
from repro.guard import SimulationHang, StatsInvalid
from repro.workloads import benchmark_trace


@pytest.fixture(scope="module")
def trace():
    return benchmark_trace("gzip", 800)


class TestHangWatchdog:
    def test_normal_run_never_trips(self, trace):
        stats = simulate(MachineConfig(), trace)
        assert stats.instructions == len(trace)

    def test_default_budget_is_generous(self):
        # The shipped threshold must dwarf any legitimate commit gap
        # (worst-case pile-up of memory latency, refill and queueing).
        assert HANG_CYCLES >= 10_000

    def test_tight_threshold_raises_with_dump(self, trace):
        # An absurdly tight threshold turns an ordinary memory stall
        # into a "hang" — exercising the real detection and dump path.
        with pytest.raises(SimulationHang) as info:
            simulate(MachineConfig(), trace, hang_cycles=1)
        exc = info.value
        assert exc.dump["trace"] == trace.name
        for key in ("cycle", "committed", "rob_occupancy",
                    "lsq_occupancy", "ifq_occupancy", "fetch_index"):
            assert key in exc.dump
        described = exc.describe()
        assert "rob_occupancy=" in described
        assert str(exc) in described

    def test_disabled_watchdog_completes(self, trace):
        baseline = simulate(MachineConfig(), trace)
        unguarded = simulate(MachineConfig(), trace, hang_cycles=None)
        assert unguarded == baseline


class TestInstructionBudget:
    def test_oversized_trace_refused_upfront(self, trace):
        with pytest.raises(SimulationError, match="budget"):
            simulate(MachineConfig(), trace,
                     max_instructions=len(trace) - 1)

    def test_exact_budget_accepted(self, trace):
        stats = simulate(MachineConfig(), trace,
                         max_instructions=len(trace))
        assert stats.instructions == len(trace)


class TestStatsIntegrity:
    def test_finished_run_validates(self, trace):
        stats = simulate(MachineConfig(), trace)
        assert stats.integrity_failures() == []
        assert stats.validate() is stats

    def test_negative_counter_is_named(self, trace):
        stats = simulate(MachineConfig(), trace)
        broken = dataclasses.replace(stats, cycles=-1)
        failures = broken.integrity_failures()
        assert any("cycles" in f for f in failures)
        with pytest.raises(StatsInvalid) as info:
            broken.validate("gzip")
        assert "gzip" in str(info.value)
        assert info.value.failures

    def test_impossible_rate_is_named(self, trace):
        stats = simulate(MachineConfig(), trace)
        broken = dataclasses.replace(
            stats, mispredictions=stats.branches + 1
        )
        assert any("mispredictions" in f
                   for f in broken.integrity_failures())

    def test_nan_derivation_is_named(self, trace):
        stats = simulate(MachineConfig(), trace)
        broken = dataclasses.replace(stats, cycles=math.nan)
        assert any("cycles" in f for f in broken.integrity_failures())
