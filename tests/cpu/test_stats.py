"""Tests for CoreStats (repro.cpu.stats)."""

import pytest

from repro.cpu import CacheSnapshot, CoreStats


class TestCacheSnapshot:
    def test_derived_quantities(self):
        snap = CacheSnapshot(accesses=100, misses=25)
        assert snap.hits == 75
        assert snap.miss_rate == pytest.approx(0.25)

    def test_empty(self):
        snap = CacheSnapshot()
        assert snap.miss_rate == 0.0
        assert snap.hits == 0


class TestCoreStats:
    def test_ipc(self):
        stats = CoreStats(cycles=200, instructions=100)
        assert stats.ipc == pytest.approx(0.5)

    def test_ipc_zero_cycles(self):
        assert CoreStats().ipc == 0.0

    def test_misprediction_rate(self):
        stats = CoreStats(branches=50, mispredictions=5)
        assert stats.misprediction_rate == pytest.approx(0.1)
        assert CoreStats().misprediction_rate == 0.0

    def test_rob_occupancy(self):
        stats = CoreStats(cycles=10, rob_occupancy_sum=55)
        assert stats.average_rob_occupancy == pytest.approx(5.5)

    def test_summary_mentions_key_metrics(self):
        stats = CoreStats(cycles=100, instructions=150, branches=10,
                          mispredictions=1)
        text = stats.summary()
        assert "IPC=1.500" in text
        assert "cycles=100" in text
        assert "mispredict_rate" in text
