"""Property-based pipeline invariants over random generated traces."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu import MachineConfig, simulate
from repro.workloads import WorkloadProfile, generate_trace

#: Machine corners sampled by the properties: default, all tight, all
#: generous, and a couple of lopsided machines.
CONFIGS = [
    MachineConfig(),
    MachineConfig(rob_entries=8, lsq_entries=2, int_alus=1,
                  memory_ports=1, ifq_entries=4),
    MachineConfig(rob_entries=64, lsq_entries=64, int_alus=4,
                  fp_alus=4, memory_ports=4, ifq_entries=32,
                  branch_predictor="perfect"),
    MachineConfig(branch_predictor="taken", mispredict_penalty=10),
    MachineConfig(l1d_size=4096, l1d_assoc=1, l1d_block=16,
                  l2_size=262144, l2_assoc=1),
]


def random_trace(seed, length):
    profile = WorkloadProfile(
        name=f"prop{seed}", seed=seed, n_blocks=24, n_functions=3,
        pointer_fraction=0.1, streaming_fraction=0.1,
    )
    return generate_trace(profile, length)


@given(st.integers(1, 10_000), st.integers(50, 1200),
       st.integers(0, len(CONFIGS) - 1))
@settings(max_examples=30, deadline=None)
def test_completion_and_throughput_bounds(seed, length, config_index):
    """Every instruction commits; IPC never exceeds the width; the
    cycle count is at least the width-limited lower bound."""
    config = CONFIGS[config_index]
    trace = random_trace(seed, length)
    stats = simulate(config, trace, warmup=True)
    assert stats.instructions == length
    assert stats.cycles * config.width >= length
    assert stats.ipc <= config.width + 1e-9
    assert stats.mispredictions <= stats.branches
    assert stats.branches == trace.branch_count()


@given(st.integers(1, 10_000), st.integers(50, 800))
@settings(max_examples=15, deadline=None)
def test_determinism_property(seed, length):
    """Identical (config, trace) always gives identical statistics."""
    trace = random_trace(seed, length)
    a = simulate(MachineConfig(), trace, warmup=True)
    b = simulate(MachineConfig(), trace, warmup=True)
    assert (a.cycles, a.l1d.misses, a.mispredictions) == \
        (b.cycles, b.l1d.misses, b.mispredictions)


@given(st.integers(1, 10_000), st.integers(100, 800))
@settings(max_examples=15, deadline=None)
def test_rob_monotonicity_property(seed, length):
    """A larger window (effectively) never slows a trace down.

    Strict monotonicity does not hold: window size perturbs the
    *timing* of branch-predictor training, which can add a couple of
    mispredictions — real machines behave the same way.  The property
    allows that second-order jitter but catches any first-order
    regression.
    """
    trace = random_trace(seed, length)
    config = MachineConfig(rob_entries=8, lsq_entries=8)
    small = simulate(config, trace, warmup=True)
    large = simulate(MachineConfig(rob_entries=64, lsq_entries=64),
                     trace, warmup=True)
    # Budget the training jitter explicitly: every extra misprediction
    # the bigger window induces costs at most a flush (penalty cycles)
    # plus the refill it shadows.
    extra = max(0, large.mispredictions - small.mispredictions)
    jitter = extra * (config.mispredict_penalty + config.rob_entries)
    assert large.cycles <= small.cycles * 1.03 + 20 + jitter


@given(st.integers(1, 10_000), st.integers(100, 800))
@settings(max_examples=15, deadline=None)
def test_perfect_prediction_dominates(seed, length):
    """The perfect predictor is never slower than the real one."""
    trace = random_trace(seed, length)
    real = simulate(MachineConfig(branch_predictor="2level"),
                    trace, warmup=True)
    perfect = simulate(MachineConfig(branch_predictor="perfect"),
                       trace, warmup=True)
    assert perfect.cycles <= real.cycles
    assert perfect.mispredictions == 0


@given(st.integers(1, 10_000))
@settings(max_examples=10, deadline=None)
def test_precomputation_never_slows(seed):
    """Precomputation only slows a run via perturbed speculation.

    Removing work perturbs issue timing and therefore predictor
    training, so extra mispredictions and BTB misfetches can appear
    downstream.  Any cycle increase must be attributable to those
    extra pipeline flushes: each one costs the redirect penalty plus
    a bounded refill of in-flight work.  A slowdown beyond that
    allowance would mean the enhancement itself added latency, which
    the model never does.
    """
    from repro.cpu import build_precompute_table

    trace = random_trace(seed, 800)
    table = build_precompute_table(trace, 128)
    config = MachineConfig()
    base = simulate(config, trace, warmup=True)
    enhanced = simulate(config, trace, warmup=True,
                        precompute_table=table)
    extra_flushes = (
        max(0, enhanced.mispredictions - base.mispredictions)
        + max(0, enhanced.btb_misfetches - base.btb_misfetches)
    )
    refill = config.rob_entries // config.width
    allowance = extra_flushes * (config.mispredict_penalty + refill) + 20
    assert enhanced.cycles <= base.cycles + allowance
