"""Tests for the instruction model (repro.cpu.isa)."""

import pytest

from repro.cpu import (
    COMPUTE_CLASSES,
    NO_REG,
    NO_VALUE,
    BranchKind,
    Instruction,
    OpClass,
)


class TestOpClass:
    def test_all_classes_present(self):
        names = {c.name for c in OpClass}
        assert names == {
            "IALU", "IMULT", "IDIV", "FALU", "FMULT", "FDIV", "FSQRT",
            "LOAD", "STORE", "BRANCH",
        }

    def test_compute_classes_exclude_memory_and_branch(self):
        assert OpClass.LOAD not in COMPUTE_CLASSES
        assert OpClass.STORE not in COMPUTE_CLASSES
        assert OpClass.BRANCH not in COMPUTE_CLASSES
        assert OpClass.IALU in COMPUTE_CLASSES
        assert OpClass.FSQRT in COMPUTE_CLASSES


class TestInstructionValidation:
    def test_simple_alu(self):
        ins = Instruction(pc=0x1000, op=OpClass.IALU, src1=1, src2=2, dst=3)
        assert ins.is_compute
        assert not ins.is_memory
        assert not ins.is_branch

    def test_load_requires_address(self):
        with pytest.raises(ValueError):
            Instruction(pc=0, op=OpClass.LOAD, dst=1)

    def test_store_requires_address(self):
        with pytest.raises(ValueError):
            Instruction(pc=0, op=OpClass.STORE, src1=1)

    def test_branch_requires_kind(self):
        with pytest.raises(ValueError):
            Instruction(pc=0, op=OpClass.BRANCH)

    def test_non_branch_rejects_kind(self):
        with pytest.raises(ValueError):
            Instruction(
                pc=0, op=OpClass.IALU, branch_kind=BranchKind.CONDITIONAL
            )

    def test_valid_branch(self):
        ins = Instruction(
            pc=0x2000, op=OpClass.BRANCH,
            branch_kind=BranchKind.CONDITIONAL, taken=True, target=0x3000,
        )
        assert ins.is_branch
        assert ins.taken

    def test_memory_flags(self):
        load = Instruction(pc=0, op=OpClass.LOAD, dst=1, mem_addr=0x100)
        store = Instruction(pc=0, op=OpClass.STORE, src1=1, mem_addr=0x100)
        assert load.is_memory and store.is_memory

    def test_defaults(self):
        ins = Instruction(pc=4, op=OpClass.FALU)
        assert ins.src1 == NO_REG
        assert ins.dst == NO_REG
        assert ins.mem_addr == NO_VALUE
        assert ins.redundancy_key == NO_VALUE

    def test_frozen(self):
        ins = Instruction(pc=4, op=OpClass.IALU)
        with pytest.raises(AttributeError):
            ins.pc = 8
