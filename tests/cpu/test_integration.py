"""Cross-module integration tests: extreme machines on real workloads."""

import pytest

from repro.core import build_design
from repro.cpu import MachineConfig, config_from_levels, simulate
from repro.cpu.params import PARAMETER_NAMES
from repro.workloads import BENCHMARK_NAMES, benchmark_trace


@pytest.fixture(scope="module")
def gzip_trace():
    return benchmark_trace("gzip", 3000)


class TestExtremeConfigurations:
    def test_all_low_machine_completes(self, gzip_trace):
        cfg = config_from_levels({n: -1 for n in PARAMETER_NAMES})
        stats = simulate(cfg, gzip_trace, warmup=True)
        assert stats.instructions == len(gzip_trace)

    def test_all_high_machine_completes(self, gzip_trace):
        cfg = config_from_levels({n: 1 for n in PARAMETER_NAMES})
        stats = simulate(cfg, gzip_trace, warmup=True)
        assert stats.instructions == len(gzip_trace)

    def test_all_high_faster_than_all_low(self, gzip_trace):
        """Every parameter at its generous setting must beat every
        parameter at its stingy setting — a global sanity invariant."""
        low = config_from_levels({n: -1 for n in PARAMETER_NAMES})
        high = config_from_levels({n: 1 for n in PARAMETER_NAMES})
        slow = simulate(low, gzip_trace, warmup=True)
        fast = simulate(high, gzip_trace, warmup=True)
        assert fast.cycles < slow.cycles

    @pytest.mark.slow
    def test_every_design_row_simulates_every_benchmark(self):
        """A smoke sweep: a sample of design rows completes on every
        benchmark without deadlock or error."""
        design = build_design()
        rows = list(design.runs())
        sample = [rows[0], rows[21], rows[43], rows[44], rows[87]]
        for name in BENCHMARK_NAMES:
            trace = benchmark_trace(name, 1200)
            for levels in sample:
                cfg = config_from_levels(levels)
                stats = simulate(cfg, trace, warmup=True)
                assert stats.instructions == 1200


class TestMonotonicSanity:
    """Loosening one resource (all else equal) never hurts."""

    CASES = [
        dict(rob_entries=8, lsq_entries=8),
        dict(int_alus=1),
        dict(memory_ports=1),
        dict(ifq_entries=4),
        dict(l1d_size=4096, l1d_assoc=1, l1d_block=16),
        dict(mispredict_penalty=10),
    ]

    @pytest.mark.parametrize("stingy", CASES)
    def test_default_beats_stingy(self, gzip_trace, stingy):
        base = simulate(MachineConfig(), gzip_trace, warmup=True)
        worse = simulate(MachineConfig().evolve(**stingy), gzip_trace,
                         warmup=True)
        assert base.cycles <= worse.cycles, stingy


class TestRangeInflation:
    """Section 2.2's warning: "choosing high and low values that
    represent too large a range ... can significantly affect the
    results by inflating the effect of that parameter"."""

    def test_wider_range_inflates_the_effect(self, gzip_trace):
        def contrast(low, high):
            slow = simulate(
                MachineConfig(rob_entries=low,
                              lsq_entries=min(low, 16)),
                gzip_trace, warmup=True).cycles
            fast = simulate(
                MachineConfig(rob_entries=high, lsq_entries=16),
                gzip_trace, warmup=True).cycles
            return slow - fast

        paper_range = contrast(8, 64)      # Table 6 values
        inflated = contrast(2, 256)        # recklessly wide
        assert inflated > paper_range > 0


class TestStatsConsistency:
    def test_committed_counts(self, gzip_trace):
        stats = simulate(MachineConfig(), gzip_trace, warmup=True)
        assert stats.instructions == len(gzip_trace)
        assert stats.branches == gzip_trace.branch_count()
        assert stats.mispredictions <= stats.branches

    def test_unit_ops_cover_instructions(self, gzip_trace):
        stats = simulate(MachineConfig(), gzip_trace, warmup=True)
        # Every non-precomputed instruction issues on some unit.
        issued = sum(stats.unit_operations.values())
        assert issued == len(gzip_trace)

    def test_cache_accesses_bounded(self, gzip_trace):
        stats = simulate(MachineConfig(), gzip_trace, warmup=True)
        assert stats.l1d.accesses >= gzip_trace.memory_count()
        assert stats.l2.accesses == (stats.l1d.misses
                                     + stats.l1i.misses)
