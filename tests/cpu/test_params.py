"""Tests for MachineConfig and the Table 6-8 parameter space."""

import pytest

from repro.cpu import (
    DEFAULT_CONFIG,
    FULLY_ASSOCIATIVE,
    KIB,
    MachineConfig,
    PARAMETER_NAMES,
    PARAMETER_SPACE,
    config_from_levels,
    parameter_spec,
)


class TestParameterSpace:
    def test_exactly_41_varied_parameters(self):
        """Tables 6-8 vary 41 parameters (43 PB columns - 2 dummies)."""
        assert len(PARAMETER_SPACE) == 41

    def test_names_unique(self):
        assert len(set(PARAMETER_NAMES)) == 41

    def test_paper_table6_values(self):
        spec = parameter_spec("Reorder Buffer Entries")
        assert (spec.low, spec.high) == (8, 64)
        spec = parameter_spec("BPred Misprediction Penalty")
        assert (spec.low, spec.high) == (10, 2)  # low value is *worse*
        spec = parameter_spec("BPred Type")
        assert (spec.low, spec.high) == ("2level", "perfect")

    def test_paper_table7_values(self):
        assert parameter_spec("Int Divide Latency").low == 80
        assert parameter_spec("Int Divide Latency").high == 10
        assert parameter_spec("FP Square Root Latency").low == 35

    def test_paper_table8_values(self):
        assert parameter_spec("L1 I-Cache Size").low == 4 * KIB
        assert parameter_spec("L1 I-Cache Size").high == 128 * KIB
        assert parameter_spec("Memory Latency First").low == 200
        assert parameter_spec("I-TLB Page Size").high == 4096 * KIB
        assert parameter_spec("BTB Associativity").high == FULLY_ASSOCIATIVE

    def test_level_mapping(self):
        spec = parameter_spec("Memory Ports")
        assert spec.value(-1) == 1
        assert spec.value(1) == 4
        with pytest.raises(ValueError):
            spec.value(0)

    def test_unknown_parameter(self):
        with pytest.raises(KeyError):
            parameter_spec("Warp Drive")


class TestMachineConfigDerivation:
    def test_divide_interval_follows_latency(self):
        cfg = MachineConfig(int_div_latency=80)
        assert cfg.int_div_interval == 80

    def test_fp_intervals_follow_latencies(self):
        cfg = MachineConfig(
            fp_mult_latency=5, fp_div_latency=35, fp_sqrt_latency=35
        )
        assert cfg.fp_mult_interval == 5
        assert cfg.fp_div_interval == 35
        assert cfg.fp_sqrt_interval == 35

    def test_following_latency_is_2_percent(self):
        """Table 8: following-block latency = 0.02 * first."""
        assert MachineConfig(mem_latency_first=200).mem_latency_following == 4
        assert MachineConfig(mem_latency_first=50).mem_latency_following == 1

    def test_dtlb_follows_itlb(self):
        cfg = MachineConfig(itlb_page_size=4096 * KIB, itlb_latency=30)
        assert cfg.dtlb_page_size == 4096 * KIB
        assert cfg.dtlb_latency == 30

    def test_explicit_override_wins(self):
        cfg = MachineConfig(int_div_latency=80, int_div_interval=1)
        assert cfg.int_div_interval == 1


class TestMachineConfigValidation:
    def test_lsq_cannot_exceed_rob(self):
        """Section 3's linkage rule, enforced."""
        with pytest.raises(ValueError):
            MachineConfig(rob_entries=8, lsq_entries=64)

    def test_unknown_predictor(self):
        with pytest.raises(ValueError):
            MachineConfig(branch_predictor="oracle")

    def test_unknown_update_point(self):
        with pytest.raises(ValueError):
            MachineConfig(speculative_update="fetch")

    def test_cache_geometry_checked(self):
        with pytest.raises(ValueError):
            MachineConfig(l1d_size=1000, l1d_block=32)

    def test_positive_counts(self):
        with pytest.raises(ValueError):
            MachineConfig(memory_ports=0)


class TestEvolve:
    def test_changes_field(self):
        cfg = DEFAULT_CONFIG.evolve(rob_entries=64)
        assert cfg.rob_entries == 64
        assert DEFAULT_CONFIG.rob_entries != 64 or True  # original intact

    def test_recomputes_derived(self):
        cfg = DEFAULT_CONFIG.evolve(mem_latency_first=200)
        assert cfg.mem_latency_following == 4

    def test_explicit_derived_survives(self):
        cfg = DEFAULT_CONFIG.evolve(
            mem_latency_first=200, mem_latency_following=9
        )
        assert cfg.mem_latency_following == 9


class TestConfigFromLevels:
    def test_all_high(self):
        cfg = config_from_levels({n: 1 for n in PARAMETER_NAMES})
        assert cfg.rob_entries == 64
        assert cfg.lsq_entries == 64          # 1.0 * ROB
        assert cfg.branch_predictor == "perfect"
        assert cfg.l2_latency == 5
        assert cfg.btb_assoc == FULLY_ASSOCIATIVE

    def test_all_low(self):
        cfg = config_from_levels({n: -1 for n in PARAMETER_NAMES})
        assert cfg.rob_entries == 8
        assert cfg.lsq_entries == 2           # 0.25 * ROB
        assert cfg.mispredict_penalty == 10
        assert cfg.mem_latency_first == 200
        assert cfg.mem_latency_following == 4

    def test_lsq_linked_to_row_rob(self):
        """Section 3: an 8-entry ROB never carries a 64-entry LSQ."""
        cfg = config_from_levels(
            {"Reorder Buffer Entries": -1, "LSQ Entries": 1}
        )
        assert cfg.rob_entries == 8
        assert cfg.lsq_entries == 8

        cfg = config_from_levels(
            {"Reorder Buffer Entries": 1, "LSQ Entries": -1}
        )
        assert cfg.rob_entries == 64
        assert cfg.lsq_entries == 16

    def test_dummy_factors_ignored(self):
        cfg = config_from_levels(
            {"Dummy Factor #1": 1, "Dummy Factor #2": -1}
        )
        assert cfg == DEFAULT_CONFIG.evolve()

    def test_dummy_factor_never_changes_machine(self):
        """The dummy columns must have no physical effect at all."""
        base = {n: 1 for n in PARAMETER_NAMES}
        with_dummy = dict(base)
        with_dummy["Dummy Factor #1"] = -1
        assert config_from_levels(base) == config_from_levels(with_dummy)

    def test_partial_levels_keep_base(self):
        cfg = config_from_levels({"Memory Ports": 1})
        assert cfg.memory_ports == 4
        assert cfg.rob_entries == DEFAULT_CONFIG.rob_entries

    def test_base_lsq_clamped_when_rob_shrinks(self):
        base = MachineConfig(rob_entries=32, lsq_entries=32)
        cfg = config_from_levels({"Reorder Buffer Entries": -1}, base)
        assert cfg.lsq_entries <= cfg.rob_entries

    def test_tlb_page_linked(self):
        cfg = config_from_levels({"I-TLB Page Size": 1})
        assert cfg.dtlb_page_size == cfg.itlb_page_size == 4096 * KIB

    def test_every_design_row_is_buildable(self):
        """All 88 rows of the paper's experiment produce valid machines."""
        from repro.core import build_design

        design = build_design()
        for levels in design.runs():
            cfg = config_from_levels(levels)
            assert cfg.lsq_entries <= cfg.rob_entries
