"""Tests for instruction precomputation (repro.cpu.precompute)."""

import pytest

from repro.cpu import (
    Instruction,
    MachineConfig,
    OpClass,
    PAPER_TABLE_ENTRIES,
    build_precompute_table,
    coverage,
    simulate,
)
from repro.workloads.trace import Trace


def redundant_trace(n=600, n_keys=8, redundant_every=2):
    """IALUs where every ``redundant_every``-th op repeats one of
    ``n_keys`` computations; the rest are unique (key = NO_VALUE)."""
    instrs = []
    for i in range(n):
        key = (i % n_keys) if i % redundant_every == 0 else -1
        instrs.append(Instruction(
            pc=0x400000 + 4 * (i % 16), op=OpClass.IALU,
            dst=1 + (i % 8), redundancy_key=key,
        ))
    return Trace.from_instructions(instrs, name="redundant")


class TestTableConstruction:
    def test_top_keys_by_frequency(self):
        tr = redundant_trace(n=600, n_keys=8)
        table = build_precompute_table(tr, table_entries=4)
        assert len(table) == 4
        counts = tr.redundancy_counts()
        chosen_counts = sorted((counts[k] for k in table), reverse=True)
        all_counts = sorted(counts.values(), reverse=True)
        assert chosen_counts == all_counts[:4]

    def test_paper_table_size(self):
        assert PAPER_TABLE_ENTRIES == 128

    def test_single_execution_keys_excluded(self):
        instrs = [Instruction(pc=4 * i, op=OpClass.IALU, dst=1,
                              redundancy_key=i) for i in range(20)]
        tr = Trace.from_instructions(instrs)
        assert build_precompute_table(tr) == frozenset()

    def test_bad_size(self):
        with pytest.raises(ValueError):
            build_precompute_table(redundant_trace(), table_entries=0)

    def test_deterministic(self):
        tr = redundant_trace()
        assert build_precompute_table(tr) == build_precompute_table(tr)


class TestCoverage:
    def test_full_table_covers_all_redundant(self):
        tr = redundant_trace(n=400, n_keys=4, redundant_every=2)
        table = build_precompute_table(tr, table_entries=64)
        assert coverage(tr, table) == pytest.approx(0.5)

    def test_empty_table_zero(self):
        tr = redundant_trace()
        assert coverage(tr, frozenset()) == 0.0


class TestPipelineIntegration:
    def test_precomputed_ops_bypass_alus(self):
        """With one slow ALU, precomputation recovers throughput —
        the mechanism behind the paper's Table 12 Int-ALU shift."""
        tr = redundant_trace(n=800, redundant_every=2)
        table = build_precompute_table(tr, 128)
        cfg = MachineConfig(int_alus=1, int_alu_latency=2)
        base = simulate(cfg, tr, warmup=True)
        enhanced = simulate(cfg, tr, precompute_table=table, warmup=True)
        assert enhanced.precompute_hits == 400
        assert enhanced.cycles < base.cycles

    def test_hits_counted_only_for_table_keys(self):
        tr = redundant_trace(n=100, n_keys=4, redundant_every=2)
        one_key = frozenset([0])
        stats = simulate(MachineConfig(), tr, precompute_table=one_key,
                         warmup=True)
        expected = sum(1 for i in range(100)
                       if i % 2 == 0 and (i % 4) == 0)
        assert stats.precompute_hits == expected

    def test_enhancement_reduces_alu_sensitivity(self):
        """The Int-ALU count matters less with precomputation on."""
        tr = redundant_trace(n=1000, redundant_every=2)
        table = build_precompute_table(tr, 128)

        def contrast(precompute):
            slow = simulate(MachineConfig(int_alus=1), tr,
                            precompute_table=precompute, warmup=True)
            fast = simulate(MachineConfig(int_alus=4), tr,
                            precompute_table=precompute, warmup=True)
            return slow.cycles - fast.cycles

        assert contrast(table) < contrast(None)

    def test_disabled_table_no_hits(self):
        tr = redundant_trace(n=100)
        stats = simulate(MachineConfig(), tr, warmup=True)
        assert stats.precompute_hits == 0
