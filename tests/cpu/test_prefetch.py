"""Tests for the next-N-line prefetcher and tournament predictor."""

import pytest

from repro.cpu import Instruction, MachineConfig, OpClass, simulate
from repro.cpu.branch import TournamentPredictor
from repro.cpu.cache import MemoryHierarchy
from repro.workloads import benchmark_trace
from repro.workloads.trace import Trace


def streaming_trace(n=400):
    """Sequential loads marching through memory (prefetch heaven)."""
    instrs = []
    for i in range(n):
        pc = 0x400000 + 4 * (i % 8)
        instrs.append(Instruction(
            pc=pc, op=OpClass.LOAD, dst=1 + (i % 8),
            mem_addr=0x10000000 + 8 * i,
        ))
    return Trace.from_instructions(instrs, name="stream")


class TestPrefetcher:
    def test_hides_streaming_misses(self):
        tr = streaming_trace()
        base = simulate(MachineConfig(), tr)
        pf = simulate(MachineConfig(), tr, prefetch_lines=2)
        assert pf.l1d.misses < base.l1d.misses
        assert pf.cycles < base.cycles

    def test_prefetch_counter(self):
        hierarchy = MemoryHierarchy(MachineConfig(), prefetch_lines=2)
        hierarchy.data_access(0x1000, write=False)   # miss -> 2 prefetches
        assert hierarchy.prefetches == 2
        hierarchy.data_access(0x1000, write=False)   # hit -> none
        assert hierarchy.prefetches == 2

    def test_demand_counters_unpolluted(self):
        hierarchy = MemoryHierarchy(MachineConfig(), prefetch_lines=4)
        hierarchy.data_access(0x1000, write=False)
        assert hierarchy.l1d.stats.accesses == 1
        assert hierarchy.l1d.stats.misses == 1

    def test_prefetched_block_hits(self):
        cfg = MachineConfig()
        hierarchy = MemoryHierarchy(cfg, prefetch_lines=1)
        hierarchy.data_access(0x1000, write=False)
        # The next block was prefetched: a demand access hits.
        latency = hierarchy.data_access(0x1000 + cfg.l1d_block,
                                        write=False)
        assert latency == cfg.l1d_latency

    def test_zero_lines_is_off(self):
        hierarchy = MemoryHierarchy(MachineConfig(), prefetch_lines=0)
        hierarchy.data_access(0x1000, write=False)
        assert hierarchy.prefetches == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            MemoryHierarchy(MachineConfig(), prefetch_lines=-1)

    def test_random_access_gains_little(self):
        """Prefetching helps streams far more than pointer chases."""
        stream = streaming_trace()
        import numpy as np
        rng = np.random.default_rng(0)
        scattered = Trace.from_instructions([
            Instruction(pc=0x400000 + 4 * (i % 8), op=OpClass.LOAD,
                        dst=1 + (i % 8),
                        mem_addr=0x10000000
                        + int(rng.integers(0, 1 << 20)) * 64)
            for i in range(400)
        ])

        def gain(tr):
            base = simulate(MachineConfig(), tr).cycles
            pf = simulate(MachineConfig(), tr, prefetch_lines=2).cycles
            return base / pf

        assert gain(stream) > gain(scattered)


class TestTournamentPredictor:
    def test_beats_worst_component_on_mixed_branches(self):
        """Two branches: one biased (bimodal's home turf), one
        alternating (history's home turf) — the tournament tracks the
        better component for each."""
        tournament = TournamentPredictor(speculative_update="commit")
        correct = 0
        total = 0
        for i in range(600):
            for pc, taken in ((0x1000, True), (0x2000, bool(i % 2))):
                hist = tournament.history
                if tournament.predict(pc) == taken:
                    correct += 1
                total += 1
                tournament.update(pc, taken, hist)
        assert correct / total > 0.8

    def test_usable_in_config(self):
        tr = benchmark_trace("gzip", 2000)
        stats = simulate(
            MachineConfig(branch_predictor="tournament"), tr, warmup=True
        )
        assert stats.instructions == 2000

    def test_repair_passthrough(self):
        t = TournamentPredictor(speculative_update="decode")
        snapshot = t.history
        t.predict(0x100)
        t.repair(snapshot, taken=True)
        assert t.history == ((snapshot << 1) | 1) & 0xF
