"""Pinned regressions for the SIMULATOR_VERSION 2 bugfix sweep.

Each test pins the corrected behaviour of one timing-model bug found
by the differential-equivalence harness (see CHANGELOG.md, "Unreleased"
→ SIMULATOR_VERSION 1 → 2).  The constants here were measured on the
fixed model; a change to any of them means the timing model moved
again and SIMULATOR_VERSION needs another bump.
"""

import random

from repro.cpu import (
    BranchKind,
    Instruction,
    MachineConfig,
    OpClass,
    Pipeline,
    simulate,
)
from repro.cpu.branch import TwoLevelPredictor
from repro.cpu.pipeline import _MISFETCH_BUBBLE
from repro.workloads.trace import Trace


def trace_of(instructions):
    return Trace.from_instructions(instructions, name="unit")


def ialu(pc, dst=0, src1=-1, src2=-1):
    return Instruction(pc=pc, op=OpClass.IALU, src1=src1, src2=src2,
                       dst=dst)


class TestMisfetchBubble:
    """A BTB misfetch stalls fetch the full ``_MISFETCH_BUBBLE``
    cycles (the stall-until comparison is strict, so the pre-fix
    ``cycle + _MISFETCH_BUBBLE`` was one cycle short)."""

    def _runs(self):
        cfg = MachineConfig(branch_predictor="taken")
        branch = Instruction(
            pc=0x100, op=OpClass.BRANCH,
            branch_kind=BranchKind.CONDITIONAL, taken=True, target=0x200,
        )
        body = [ialu(0x200 + 4 * i, dst=1 + i % 8) for i in range(8)]
        trace = trace_of([branch] + body)
        cold = Pipeline(cfg)
        cold_stats = cold.run(trace)
        warm = Pipeline(cfg)
        warm.btb.insert(0x100, 0x200)   # pre-known target: no misfetch
        warm_stats = warm.run(trace)
        return cold_stats, warm_stats

    def test_misfetch_detected_only_on_cold_btb(self):
        cold, warm = self._runs()
        assert cold.btb_misfetches == 1
        assert warm.btb_misfetches == 0

    def test_bubble_costs_exactly_the_documented_cycles(self):
        cold, warm = self._runs()
        assert cold.cycles - warm.cycles == _MISFETCH_BUBBLE


class TestCircularRAS:
    """An underflowed RAS pop predicts the stale slot contents; a
    return whose target still matches that slot is *not* a
    misprediction (the pre-fix model returned None and charged a
    guaranteed miss)."""

    def test_repeated_return_site_hits_stale_slot(self):
        cfg = MachineConfig(ras_entries=1)
        call = Instruction(pc=0x100, op=OpClass.BRANCH,
                           branch_kind=BranchKind.CALL,
                           taken=True, target=0x300)
        # First return pops the live entry (0x104); the second pops an
        # underflowed stack whose single slot still holds 0x104.
        ret1 = Instruction(pc=0x300, op=OpClass.BRANCH,
                           branch_kind=BranchKind.RETURN,
                           taken=True, target=0x104)
        ret2 = Instruction(pc=0x104, op=OpClass.BRANCH,
                           branch_kind=BranchKind.RETURN,
                           taken=True, target=0x104)
        tail = [ialu(0x108 + 4 * i) for i in range(4)]
        stats = simulate(cfg, trace_of([call, ret1, ret2] + tail))
        assert stats.ras_mispredictions == 0
        assert stats.mispredictions == 0

    def test_wrong_stale_slot_still_mispredicts(self):
        cfg = MachineConfig(ras_entries=1)
        call = Instruction(pc=0x100, op=OpClass.BRANCH,
                           branch_kind=BranchKind.CALL,
                           taken=True, target=0x300)
        ret1 = Instruction(pc=0x300, op=OpClass.BRANCH,
                           branch_kind=BranchKind.RETURN,
                           taken=True, target=0x104)
        ret2 = Instruction(pc=0x104, op=OpClass.BRANCH,
                           branch_kind=BranchKind.RETURN,
                           taken=True, target=0x900)   # stale slot: 0x104
        tail = [ialu(0x900 + 4 * i) for i in range(4)]
        stats = simulate(cfg, trace_of([call, ret1, ret2] + tail))
        assert stats.ras_mispredictions == 1


class TestStoreCommitPort:
    """Committing stores acquire a memory port for the cache write;
    with one port, back-to-back store commits serialize."""

    def _stores(self):
        return [Instruction(pc=0x100 + 4 * i, op=OpClass.STORE,
                            mem_addr=0x1000 + 64 * i) for i in range(4)]

    def test_single_port_serializes_store_commit(self):
        one = simulate(MachineConfig(memory_ports=1),
                       trace_of(self._stores()))
        four = simulate(MachineConfig(memory_ports=4),
                        trace_of(self._stores()))
        assert one.cycles == 176
        assert four.cycles == 171

    def test_commit_write_not_double_counted(self):
        stats = simulate(MachineConfig(memory_ports=1),
                         trace_of(self._stores()))
        # One MemPort operation per store — the commit-time write
        # busies the port but is the same instruction, not a new op.
        assert stats.unit_operations["MemPort"] == 4


class TestStallAttribution:
    """Front-end stall cycles are only attributed while the IFQ has
    room; a recovery cycle spent with a full IFQ is a back-end
    bottleneck, not a front-end one.  Timing is unchanged — only the
    ``stall_cycles`` split moves (pre-fix this trace attributed 55
    mispredict cycles at the same 410 total)."""

    def _run(self):
        cfg = MachineConfig(rob_entries=4, lsq_entries=4, ifq_entries=2,
                            mispredict_penalty=14)
        instrs = []
        base = 0x400
        for i in range(6):       # slow chain keeps the ROB full
            instrs.append(Instruction(pc=base + 4 * i, op=OpClass.IDIV,
                                      dst=1, src1=1))
        instrs.append(Instruction(pc=base + 24, op=OpClass.BRANCH,
                                  branch_kind=BranchKind.CONDITIONAL,
                                  taken=False))
        for i in range(6):
            instrs.append(Instruction(pc=base + 28 + 4 * i,
                                      op=OpClass.IDIV, dst=1, src1=1))
        return simulate(cfg, trace_of(instrs))

    def test_pinned_attribution_split(self):
        stats = self._run()
        assert stats.cycles == 410
        assert stats.stall_cycles == {
            "fetch": 176,
            "fu_busy": 0,
            "lsq_full": 0,
            "mispredict": 36,
            "rob_full": 133,
        }

    def test_buckets_bounded_by_cycles(self):
        stats = self._run()
        for cause, count in stats.stall_cycles.items():
            assert 0 <= count <= stats.cycles, cause
        assert stats.stall_cycles["rob_full"] == stats.dispatch_stall_rob


class TestWarmupHistoryRepair:
    """Functional warm-up repairs speculative predictor history after
    a misprediction, exactly as the timed pipeline does — otherwise
    a warmed run starts from history the real machine never holds."""

    def test_warm_history_matches_reference_replay(self):
        cfg = MachineConfig(speculative_update="decode")
        rnd = random.Random(7)
        sites = [0x500, 0x540, 0x580]
        instrs = [
            Instruction(pc=sites[i % 3], op=OpClass.BRANCH,
                        branch_kind=BranchKind.CONDITIONAL,
                        taken=bool(rnd.getrandbits(1)), target=0x700)
            for i in range(40)
        ]
        pipeline = Pipeline(cfg)
        pipeline.warm(trace_of(instrs))

        reference = TwoLevelPredictor(speculative_update="decode")
        for ins in instrs:
            history = reference.history
            predicted = reference.predict(ins.pc)
            reference.update(ins.pc, ins.taken, history)
            if predicted != ins.taken:
                reference.repair(history, ins.taken)
        assert pipeline.predictor.history == reference.history
