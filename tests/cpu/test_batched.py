"""Tests for the batched structure-of-arrays core (repro.cpu.batched).

The contract under test is *field-exact equivalence* with the
interpreted reference model — same CoreStats, same watchdog behaviour,
same diagnostics — plus the static trace decode it runs on.
"""

import dataclasses

import pytest

from repro.cpu import (
    Instruction,
    MachineConfig,
    OpClass,
    SimulationError,
    simulate,
)
from repro.cpu.equivalence import differential_sweep
from repro.guard.errors import SimulationHang
from repro.workloads import benchmark_trace
from repro.workloads.trace import Trace


def _stats_dict(stats):
    return dataclasses.asdict(stats)


def _native_available() -> bool:
    from repro.cpu.native import _load

    return _load() is not None


needs_native = pytest.mark.skipif(
    not _native_available(),
    reason="no C toolchain / native kernel build failed",
)

CORES = [
    "batched-python",
    pytest.param("batched-native", marks=needs_native),
]


class TestEquivalence:
    @pytest.mark.parametrize("core", CORES)
    @pytest.mark.parametrize("bench", ["gzip", "mcf", "mesa"])
    def test_field_exact_on_golden_traces(self, bench, core):
        trace = benchmark_trace(bench, 2000)
        ref = simulate(MachineConfig(), trace, warmup=True,
                       core="reference")
        bat = simulate(MachineConfig(), trace, warmup=True, core=core)
        assert _stats_dict(ref) == _stats_dict(bat)

    @pytest.mark.parametrize("core", CORES)
    def test_differential_sweep_clean(self, core):
        """A small randomized sweep (config corners x trace corners)
        finds zero divergences; CI runs a bigger one."""
        assert differential_sweep(6, seed=1234, core=core) == []

    def test_unknown_core_rejected(self):
        trace = benchmark_trace("gzip", 200)
        with pytest.raises(ValueError, match="unknown simulator core"):
            simulate(MachineConfig(), trace, core="fast")


class TestDecode:
    def test_producers_are_causal_and_cached(self):
        trace = benchmark_trace("mcf", 1500)
        decoded = trace.decoded()
        assert decoded is trace.decoded()   # memoised
        trace.validate_decode()

    def test_register_producer_is_last_writer(self):
        instrs = [
            Instruction(pc=0x100, op=OpClass.IALU, dst=3),
            Instruction(pc=0x104, op=OpClass.IALU, dst=3),
            Instruction(pc=0x108, op=OpClass.IALU, src1=3, src2=3, dst=4),
            Instruction(pc=0x10C, op=OpClass.IALU, src1=4, src2=3),
        ]
        d = Trace.from_instructions(instrs).decoded()
        assert d.prod1[2] == 1 and d.prod2[2] == 1   # dup edges kept
        assert d.prod1[3] == 2 and d.prod2[3] == 1
        assert d.prod1[0] == -1

    def test_store_producer_is_latest_earlier_store(self):
        instrs = [
            Instruction(pc=0x100, op=OpClass.STORE, mem_addr=0x1000),
            Instruction(pc=0x104, op=OpClass.STORE, mem_addr=0x1000),
            Instruction(pc=0x108, op=OpClass.LOAD, mem_addr=0x1000, dst=1),
            Instruction(pc=0x10C, op=OpClass.LOAD, mem_addr=0x2000, dst=2),
        ]
        d = Trace.from_instructions(instrs).decoded()
        assert d.store_prod[2] == 1
        assert d.store_prod[3] == -1

    def test_decode_cache_dropped_on_pickle(self):
        import pickle

        trace = benchmark_trace("gzip", 300)
        trace.decoded()
        clone = pickle.loads(pickle.dumps(trace))
        assert clone._decoded is None
        assert clone.fingerprint() == trace.fingerprint()
        assert len(clone.decoded().prod1) == len(trace)


class TestWatchdogParity:
    """Both cores trip every watchdog at the same cycle with the same
    message and the same machine-state dump (ISSUE 6 satellite)."""

    def _hang(self, core, trace, config, **kwargs):
        with pytest.raises(SimulationHang) as err:
            simulate(config, trace, core=core, **kwargs)
        return str(err.value), err.value.dump

    @pytest.mark.parametrize("core", CORES)
    def test_hang_diagnostics_identical_cold_fetch(self, core):
        trace = benchmark_trace("gzip", 800)
        ref = self._hang("reference", trace, MachineConfig(),
                         hang_cycles=1)
        bat = self._hang(core, trace, MachineConfig(), hang_cycles=1)
        assert ref == bat

    @pytest.mark.parametrize("core", CORES)
    def test_hang_diagnostics_identical_with_populated_rob(self, core):
        instrs = [Instruction(pc=0x100 + 4 * i, op=OpClass.IDIV,
                              dst=1, src1=1) for i in range(12)]
        trace = Trace.from_instructions(instrs, name="divchain")
        config = MachineConfig(int_div_latency=40)
        ref = self._hang("reference", trace, config,
                         hang_cycles=20, warmup=True)
        bat = self._hang(core, trace, config,
                         hang_cycles=20, warmup=True)
        assert ref == bat
        assert ref[1]["rob_head"]["seq"] == 0
        assert ref[1]["rob_occupancy"] == 12

    @pytest.mark.parametrize("core", CORES)
    def test_cycle_budget_identical(self, core):
        trace = benchmark_trace("gzip", 800)
        messages = []
        for which in ("reference", core):
            with pytest.raises(SimulationError) as err:
                simulate(MachineConfig(), trace, core=which,
                         max_cycles=40)
            messages.append(str(err.value))
        assert messages[0] == messages[1]

    @pytest.mark.parametrize("core", CORES)
    def test_instruction_budget_identical(self, core):
        trace = benchmark_trace("gzip", 800)
        messages = []
        for which in ("reference", core):
            with pytest.raises(SimulationError, match="budget") as err:
                simulate(MachineConfig(), trace, core=which,
                         max_instructions=100)
            messages.append(str(err.value))
        assert messages[0] == messages[1]
