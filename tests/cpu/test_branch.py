"""Tests for branch predictors, BTB, and RAS (repro.cpu.branch)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.branch import (
    BimodalPredictor,
    BranchTargetBuffer,
    ReturnAddressStack,
    StaticTakenPredictor,
    TwoBitCounterTable,
    TwoLevelPredictor,
    make_direction_predictor,
)


class TestTwoBitCounters:
    def test_initial_weakly_taken(self):
        table = TwoBitCounterTable(16)
        assert table.predict(0) is True

    def test_saturates_down(self):
        table = TwoBitCounterTable(16)
        for _ in range(10):
            table.update(3, taken=False)
        assert table.predict(3) is False
        table.update(3, taken=True)   # one taken shouldn't flip it
        assert table.predict(3) is False

    def test_saturates_up(self):
        table = TwoBitCounterTable(16)
        for _ in range(10):
            table.update(5, taken=True)
        table.update(5, taken=False)
        assert table.predict(5) is True

    def test_hysteresis(self):
        """2-bit counters tolerate a single anomaly (the whole point)."""
        table = TwoBitCounterTable(8)
        for _ in range(4):
            table.update(1, True)
        table.update(1, False)
        assert table.predict(1) is True

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            TwoBitCounterTable(12)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TwoBitCounterTable(0)


class TestTwoLevelPredictor:
    def test_learns_biased_branch(self):
        p = TwoLevelPredictor(speculative_update="commit")
        pc = 0x4000
        correct = 0
        for i in range(200):
            hist = p.history
            pred = p.predict(pc)
            actual = True
            correct += pred == actual
            p.update(pc, actual, hist)
        assert correct > 180

    def test_learns_alternating_pattern(self):
        """History lets a 2-level predictor learn period-2 patterns
        that a bimodal predictor cannot."""
        two_level = TwoLevelPredictor(speculative_update="commit")
        bimodal = BimodalPredictor()
        pc = 0x8000
        tl_correct = bm_correct = 0
        for i in range(400):
            actual = bool(i % 2)
            hist = two_level.history
            if two_level.predict(pc) == actual:
                tl_correct += 1
            two_level.update(pc, actual, hist)
            if bimodal.predict(pc) == actual:
                bm_correct += 1
            bimodal.update(pc, actual)
        # The alternating history gives the 2-level predictor two
        # dedicated counters; the bimodal predictor's single counter
        # oscillates and never settles.
        assert tl_correct > 350
        assert tl_correct > bm_correct

    def test_commit_mode_history_updates_at_update(self):
        p = TwoLevelPredictor(speculative_update="commit")
        before = p.history
        p.predict(0x100)
        assert p.history == before          # not speculative
        p.update(0x100, True, before)
        assert p.history == ((before << 1) | 1) & 0xF

    def test_decode_mode_history_updates_at_predict(self):
        p = TwoLevelPredictor(speculative_update="decode")
        before = p.history
        pred = p.predict(0x100)
        assert p.history == ((before << 1) | int(pred)) & 0xF

    def test_repair_rewinds_history(self):
        p = TwoLevelPredictor(speculative_update="decode")
        snapshot = p.history
        p.predict(0x200)
        p.repair(snapshot, taken=True)
        assert p.history == ((snapshot << 1) | 1) & 0xF

    def test_bad_update_point(self):
        with pytest.raises(ValueError):
            TwoLevelPredictor(speculative_update="issue")


class TestStaticTaken:
    def test_always_taken(self):
        p = StaticTakenPredictor()
        assert p.predict(0x123) is True
        p.update(0x123, False)
        assert p.predict(0x123) is True


class TestFactory:
    def test_perfect_is_none(self):
        assert make_direction_predictor("perfect", "commit") is None

    def test_kinds(self):
        assert isinstance(
            make_direction_predictor("2level", "commit"), TwoLevelPredictor
        )
        assert isinstance(
            make_direction_predictor("bimodal", "commit"), BimodalPredictor
        )
        assert isinstance(
            make_direction_predictor("taken", "commit"), StaticTakenPredictor
        )

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_direction_predictor("neural", "commit")


class TestBTB:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(16, 2)
        assert btb.lookup(0x100) is None
        btb.insert(0x100, 0x500)
        assert btb.lookup(0x100) == 0x500

    def test_update_existing(self):
        btb = BranchTargetBuffer(16, 2)
        btb.insert(0x100, 0x500)
        btb.insert(0x100, 0x900)
        assert btb.lookup(0x100) == 0x900

    def test_lru_within_set(self):
        btb = BranchTargetBuffer(4, 2)   # 2 sets of 2
        # Three PCs in the same set (stride = 2 sets * 4 bytes).
        a, b, c = 0x100, 0x108, 0x110
        btb.insert(a, 1)
        btb.insert(b, 2)
        btb.lookup(a)          # a is now MRU
        btb.insert(c, 3)       # evicts b
        assert btb.lookup(a) == 1
        assert btb.lookup(b) is None
        assert btb.lookup(c) == 3

    def test_fully_associative(self):
        btb = BranchTargetBuffer(4, 0)
        for i in range(4):
            btb.insert(0x100 + 4 * i, i)
        for i in range(4):
            assert btb.lookup(0x100 + 4 * i) == i

    def test_capacity_eviction(self):
        btb = BranchTargetBuffer(2, 0)
        btb.insert(0x100, 1)
        btb.insert(0x104, 2)
        btb.insert(0x108, 3)
        assert btb.lookup(0x100) is None

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(0, 2)
        with pytest.raises(ValueError):
            BranchTargetBuffer(6, 4)


class TestRAS:
    def test_push_pop(self):
        ras = ReturnAddressStack(8)
        ras.push(0x100)
        ras.push(0x200)
        assert ras.pop() == 0x200
        assert ras.pop() == 0x100
        # Underflow walks the ring into never-written slots (zeros) —
        # a stale prediction, never None (the structure is hardware).
        assert ras.pop() == 0

    def test_overflow_corrupts_oldest(self):
        """Call chains deeper than the RAS wrap and lose old entries —
        the mechanism that makes RAS depth a (minor) PB factor."""
        ras = ReturnAddressStack(2)
        ras.push(1)
        ras.push(2)
        ras.push(3)            # overwrites 1
        assert ras.pop() == 3
        assert ras.pop() == 2
        # Underflowed pop wraps back onto the stale slot last holding 3.
        assert ras.pop() == 3
        assert len(ras) == 0

    def test_len(self):
        ras = ReturnAddressStack(4)
        assert len(ras) == 0
        ras.push(1)
        assert len(ras) == 1
        ras.pop()
        assert len(ras) == 0

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            ReturnAddressStack(0)


@given(st.lists(st.integers(0, 1000), min_size=1, max_size=40))
@settings(max_examples=50, deadline=None)
def test_ras_is_lifo_within_capacity(pushes):
    """Pops mirror pushes in LIFO order for chains within the depth."""
    depth = 64
    ras = ReturnAddressStack(depth)
    for value in pushes:
        ras.push(value)
    for value in reversed(pushes[-depth:]):
        assert ras.pop() == value


@given(st.lists(st.tuples(st.integers(0, 60), st.booleans()),
                min_size=1, max_size=200))
@settings(max_examples=40, deadline=None)
def test_predictor_always_returns_bool(history):
    """The predictor never crashes and always answers (hypothesis)."""
    p = TwoLevelPredictor()
    for pc_index, taken in history:
        pc = 0x1000 + pc_index * 4
        snapshot = p.history
        assert p.predict(pc) in (True, False)
        p.update(pc, taken, snapshot)
