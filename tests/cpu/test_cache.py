"""Tests for caches, TLBs and main memory (repro.cpu.cache/memory)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.cache import TLB, Cache, MemoryHierarchy
from repro.cpu.memory import MainMemory
from repro.cpu.params import MachineConfig


def flat_memory(latency=100):
    return MainMemory(latency, 2, 8)


class TestMainMemory:
    def test_single_chunk(self):
        mem = MainMemory(100, 2, 32)
        assert mem.access(32) == 100

    def test_following_chunks(self):
        """Table 8 semantics: first + (chunks-1) * following."""
        mem = MainMemory(100, 2, 8)
        assert mem.access(64) == 100 + 7 * 2

    def test_partial_chunk_rounds_up(self):
        mem = MainMemory(50, 1, 32)
        assert mem.access(40) == 50 + 1

    def test_bandwidth_contrast(self):
        """The paper's low/high bandwidth values on an L2 block."""
        narrow = MainMemory(200, 4, 4).access(256)
        wide = MainMemory(200, 4, 32).access(256)
        assert narrow == 200 + 63 * 4
        assert wide == 200 + 7 * 4
        assert narrow > wide

    def test_validation(self):
        with pytest.raises(ValueError):
            MainMemory(0, 2, 8)
        with pytest.raises(ValueError):
            MainMemory(10, -1, 8)
        with pytest.raises(ValueError):
            MainMemory(10, 1, 0)
        with pytest.raises(ValueError):
            MainMemory(10, 1, 8).access(0)

    def test_access_counted(self):
        mem = flat_memory()
        mem.access(64)
        mem.access(64)
        assert mem.accesses == 2
        mem.reset_stats()
        assert mem.accesses == 0


class TestCacheBasics:
    def test_cold_miss_then_hit(self):
        cache = Cache(1024, 2, 32, 1, flat_memory(100))
        first = cache.access(0x40)
        second = cache.access(0x40)
        assert first > second
        assert second == 1
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1

    def test_spatial_locality_within_block(self):
        cache = Cache(1024, 2, 32, 1, flat_memory())
        cache.access(0x40)
        assert cache.access(0x5F) == 1   # same 32-byte block
        assert cache.access(0x60) > 1    # next block

    def test_miss_latency_includes_lower_level(self):
        mem = MainMemory(100, 2, 8)
        l2 = Cache(4096, 4, 64, 10, mem)
        l1 = Cache(1024, 2, 32, 1, l2)
        # Cold L1 miss -> L2 miss -> memory (fetching L2's 64B block).
        assert l1.access(0) == 1 + 10 + (100 + 7 * 2)
        # Second access to the same block: L1 hit.
        assert l1.access(0) == 1
        # A different L1 block inside the same (cached) L2 block.
        assert l1.access(32) == 1 + 10

    def test_lru_eviction_order(self):
        cache = Cache(64, 2, 32, 1, flat_memory())  # one set, two ways
        cache.access(0)      # block A
        cache.access(64)     # block B
        cache.access(0)      # A is MRU
        cache.access(128)    # evicts B (LRU)
        assert cache.contains(0)
        assert not cache.contains(64)
        assert cache.contains(128)

    def test_direct_mapped_conflicts(self):
        cache = Cache(64, 1, 32, 1, flat_memory())  # 2 sets, direct
        cache.access(0)
        cache.access(64)     # same set as 0
        assert not cache.contains(0)

    def test_fully_associative(self):
        cache = Cache(128, 0, 32, 1, flat_memory())
        for i in range(4):
            cache.access(i * 1024)  # would all conflict if set-mapped
        for i in range(4):
            assert cache.contains(i * 1024)

    def test_write_allocate_and_writeback_counting(self):
        cache = Cache(64, 1, 32, 1, flat_memory())
        cache.access(0, write=True)     # allocate dirty
        cache.access(64, write=False)   # evict dirty block 0
        assert cache.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        cache = Cache(64, 1, 32, 1, flat_memory())
        cache.access(0)
        cache.access(64)
        assert cache.stats.writebacks == 0

    def test_write_hit_marks_dirty(self):
        cache = Cache(64, 1, 32, 1, flat_memory())
        cache.access(0)                 # clean allocate
        cache.access(0, write=True)     # dirty it
        cache.access(64)                # evict -> writeback
        assert cache.stats.writebacks == 1

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            Cache(100, 2, 32, 1, flat_memory())  # size not multiple
        with pytest.raises(ValueError):
            Cache(96, 0, 32, 1, flat_memory(), replacement="plru")

    def test_fifo_does_not_promote_on_hit(self):
        fifo = Cache(64, 2, 32, 1, flat_memory(), replacement="fifo")
        fifo.access(0)
        fifo.access(64)
        fifo.access(0)       # hit; FIFO must NOT move it to front...
        fifo.access(128)     # ...but insertion order decides eviction
        # FIFO inserts at head and evicts tail; 0 was oldest insertion
        # only if hits don't reorder. Our FIFO keeps hit order stable.
        assert fifo.contains(128)

    def test_random_replacement_deterministic_seed(self):
        a = Cache(64, 2, 32, 1, flat_memory(), replacement="random",
                  rng_seed=9)
        b = Cache(64, 2, 32, 1, flat_memory(), replacement="random",
                  rng_seed=9)
        for addr in (0, 64, 128, 192, 0, 256):
            assert a.access(addr) == b.access(addr)

    def test_miss_rate(self):
        cache = Cache(1024, 2, 32, 1, flat_memory())
        cache.access(0)
        cache.access(0)
        assert cache.stats.miss_rate == pytest.approx(0.5)


class TestTLB:
    def test_hit_is_free(self):
        tlb = TLB(16, 4096, 4, 40)
        assert tlb.access(0x1000) == 40   # cold miss
        assert tlb.access(0x1FFF) == 0    # same page

    def test_page_size_reach(self):
        big = TLB(2, 4 * 1024 * 1024, 0, 40)
        assert big.access(0) == 40
        assert big.access(3 * 1024 * 1024) == 0  # same 4MB page

    def test_capacity(self):
        tlb = TLB(2, 4096, 0, 30)
        tlb.access(0)
        tlb.access(4096)
        tlb.access(8192)       # evicts page 0
        assert tlb.access(0) == 30

    def test_set_conflicts(self):
        tlb = TLB(4, 4096, 2, 30)   # 2 sets of 2
        # Pages 0, 2, 4 all map to set 0.
        tlb.access(0)
        tlb.access(2 * 4096)
        tlb.access(4 * 4096)
        assert tlb.access(0) == 30  # evicted by conflict

    def test_validation(self):
        with pytest.raises(ValueError):
            TLB(0, 4096, 2, 10)
        with pytest.raises(ValueError):
            TLB(6, 4096, 4, 10)


class TestMemoryHierarchy:
    def test_construction_from_config(self):
        h = MemoryHierarchy(MachineConfig())
        assert h.l1i.size == MachineConfig().l1i_size
        assert h.l2.next_level is h.memory

    def test_instruction_fetch_path(self):
        h = MemoryHierarchy(MachineConfig())
        cold = h.instruction_fetch(0x400000)
        warm = h.instruction_fetch(0x400000)
        assert cold > warm
        assert h.itlb.stats.accesses == 2

    def test_data_path_write(self):
        h = MemoryHierarchy(MachineConfig())
        h.data_access(0x1000, write=True)
        assert h.l1d.stats.accesses == 1
        assert h.dtlb.stats.accesses == 1

    def test_l1i_and_l1d_share_l2(self):
        h = MemoryHierarchy(MachineConfig())
        h.instruction_fetch(0x400000)
        h.data_access(0x400000, write=False)   # same block, via L1D
        # The second access finds the block already in the shared L2.
        assert h.l2.stats.accesses == 2
        assert h.l2.stats.misses == 1

    def test_reset_stats(self):
        h = MemoryHierarchy(MachineConfig())
        h.data_access(0x1000, write=False)
        h.reset_stats()
        assert h.l1d.stats.accesses == 0
        assert h.dtlb.stats.accesses == 0


@given(st.lists(st.integers(0, 1 << 16), min_size=1, max_size=300),
       st.sampled_from([1, 2, 4, 0]))
@settings(max_examples=40, deadline=None)
def test_cache_occupancy_invariants(addresses, assoc):
    """No set ever exceeds its associativity; stats stay consistent."""
    cache = Cache(2048, assoc, 32, 1, flat_memory())
    for addr in addresses:
        cache.access(addr)
    for entries in cache._sets:
        assert len(entries) <= cache.assoc
        tags = [e[0] for e in entries]
        assert len(set(tags)) == len(tags)   # no duplicate blocks
    assert cache.stats.hits + cache.stats.misses == cache.stats.accesses
    assert cache.stats.misses >= 1


@given(st.lists(st.integers(0, 1 << 14), min_size=1, max_size=200))
@settings(max_examples=30, deadline=None)
def test_bigger_cache_never_misses_more_lru(addresses):
    """LRU inclusion: doubling associativity at the same set count never
    increases misses for any reference stream."""
    small = Cache(1024, 2, 32, 1, flat_memory())
    large = Cache(2048, 4, 32, 1, flat_memory())  # same 16 sets, 4-way
    for addr in addresses:
        small.access(addr)
        large.access(addr)
    assert large.stats.misses <= small.stats.misses
