"""Unit tests for the I/O fault injector and the write seam.

The seam's contract (``repro.guard.fsfault``) in four claims:

* schedules are **deterministic** — same spec, same operation
  sequence, same faults, no wall clock, no randomness at fire time;
* each seam primitive consumes exactly one index on its own channel
  (``write`` / ``fsync`` / ``rename``), so specs are schedulable
  without knowing how writers interleave;
* :func:`~repro.guard.fsfault.publish_bytes` is **atomic under every
  fault**: the destination name only ever holds the old payload or
  the complete new one, and no temp residue survives a failure;
* a transient fault window clears — retries consume fresh indices
  and succeed once past the window.
"""

import errno
import os

import pytest

from repro.guard import fsfault
from repro.guard.fsfault import (
    ALWAYS,
    FsFault,
    FsFaultInjector,
    injected,
    publish_bytes,
    publish_text,
    vfs_fsync,
    vfs_replace,
    vfs_write,
)


@pytest.fixture(autouse=True)
def _no_leftover_injector():
    fsfault.uninstall()
    yield
    fsfault.uninstall()


class TestFaultValidation:
    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown fsfault action"):
            FsFault("explode", 0)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError, match="index"):
            FsFault("enospc", -1)

    def test_zero_count_rejected(self):
        with pytest.raises(ValueError, match="count"):
            FsFault("eio", 0, count=0)

    def test_channel_mapping(self):
        assert FsFault("enospc", 0).channel == "write"
        assert FsFault("eio", 0).channel == "write"
        assert FsFault("torn", 0).channel == "write"
        assert FsFault("fsync", 0).channel == "fsync"
        assert FsFault("rename", 0).channel == "rename"


class TestSpecParsing:
    def test_round_trip(self):
        inj = FsFaultInjector.from_spec(
            "enospc:5:10, torn:30, rename:2, fsync:0:always"
        )
        assert [(f.action, f.index, f.count) for f in inj.faults] == [
            ("enospc", 5, 10), ("torn", 30, 1), ("rename", 2, 1),
            ("fsync", 0, ALWAYS),
        ]

    def test_empty_items_skipped(self):
        inj = FsFaultInjector.from_spec("eio:1,,")
        assert len(inj.faults) == 1

    def test_missing_index_rejected(self):
        with pytest.raises(ValueError, match="action:index"):
            FsFaultInjector.from_spec("enospc")

    def test_bad_action_rejected(self):
        with pytest.raises(ValueError, match="unknown fsfault action"):
            FsFaultInjector.from_spec("chaos:1")


class TestSeededSchedules:
    def test_same_seed_same_schedule(self):
        a = FsFaultInjector.seeded(7, 100, enospc=3, eio=2, torn=1,
                                   fsyncs=2, renames=2)
        b = FsFaultInjector.seeded(7, 100, enospc=3, eio=2, torn=1,
                                   fsyncs=2, renames=2)
        assert [(f.action, f.index, f.count) for f in a.faults] == \
            [(f.action, f.index, f.count) for f in b.faults]

    def test_different_seed_different_schedule(self):
        a = FsFaultInjector.seeded(1, 1000, enospc=4)
        b = FsFaultInjector.seeded(2, 1000, enospc=4)
        assert [(f.index) for f in a.faults] != \
            [(f.index) for f in b.faults]

    def test_write_faults_on_distinct_indices(self):
        inj = FsFaultInjector.seeded(3, 50, enospc=10, eio=10, torn=10)
        indices = [f.index for f in inj.faults]
        assert len(indices) == len(set(indices)) == 30

    def test_oversubscription_rejected(self):
        with pytest.raises(ValueError, match="cannot schedule"):
            FsFaultInjector.seeded(0, 5, enospc=6)


class TestChannelCounters:
    def test_each_primitive_consumes_its_own_channel(self, tmp_path):
        inj = FsFaultInjector([])
        with injected(inj):
            with open(tmp_path / "f", "wb") as handle:
                vfs_write(handle, b"x")
                vfs_write(handle, b"y")
                vfs_fsync(handle.fileno())
            vfs_replace(tmp_path / "f", tmp_path / "g")
        assert inj.counts == {"write": 2, "fsync": 1, "rename": 1}

    def test_window_semantics(self, tmp_path):
        inj = FsFaultInjector([FsFault("enospc", 1, count=2)])
        with injected(inj), open(tmp_path / "f", "wb") as handle:
            vfs_write(handle, b"ok")          # index 0: clean
            for _ in range(2):                # indices 1, 2: faulted
                with pytest.raises(OSError) as err:
                    vfs_write(handle, b"no")
                assert err.value.errno == errno.ENOSPC
            vfs_write(handle, b"ok")          # index 3: window past
        assert inj.fired == [("write", 1, "enospc"),
                             ("write", 2, "enospc")]

    def test_fired_log_records_channel_index_action(self, tmp_path):
        inj = FsFaultInjector([FsFault("rename", 0)])
        with injected(inj), pytest.raises(OSError):
            vfs_replace(tmp_path / "a", tmp_path / "b")
        assert inj.fired == [("rename", 0, "rename")]


class TestTornWrites:
    def test_half_the_bytes_land_then_enospc(self, tmp_path):
        path = tmp_path / "torn"
        inj = FsFaultInjector([FsFault("torn", 0)])
        with injected(inj):
            with open(path, "wb") as handle:
                with pytest.raises(OSError) as err:
                    vfs_write(handle, b"0123456789")
        assert err.value.errno == errno.ENOSPC
        assert path.read_bytes() == b"01234"  # the damage is on disk


class TestPublishAtomicity:
    @pytest.mark.parametrize("action", ["enospc", "eio", "torn",
                                        "fsync", "rename"])
    def test_no_torn_destination_under_any_fault(self, tmp_path,
                                                 action):
        path = tmp_path / "artifact.bin"
        path.write_bytes(b"old payload")
        inj = FsFaultInjector([FsFault(action, 0, count=ALWAYS)])
        with injected(inj), pytest.raises(OSError):
            publish_bytes(path, b"new payload", fsync=True, retries=2)
        assert path.read_bytes() == b"old payload"
        assert list(tmp_path.iterdir()) == [path], \
            "temp residue survived a failed publish"

    def test_retries_clear_a_transient_window(self, tmp_path):
        path = tmp_path / "artifact.bin"
        inj = FsFaultInjector([FsFault("enospc", 0, count=2)])
        with injected(inj):
            publish_bytes(path, b"payload", retries=2)
        assert path.read_bytes() == b"payload"
        assert inj.fired == [("write", 0, "enospc"),
                             ("write", 1, "enospc")]

    def test_publish_text_round_trip(self, tmp_path):
        path = tmp_path / "doc.json"
        publish_text(path, "{\"ok\": true}\n")
        assert path.read_text() == "{\"ok\": true}\n"

    def test_temp_name_never_matches_artifact_scans(self, tmp_path,
                                                    monkeypatch):
        """An in-progress publish must be invisible to directory
        scans globbing final suffixes (*.task, *.pkl, *.result)."""
        seen = []
        real_write = fsfault.vfs_write

        def spy(handle, data):
            seen.extend(p.name for p in tmp_path.glob("*.task"))
            real_write(handle, data)

        monkeypatch.setattr(fsfault, "vfs_write", spy)
        publish_bytes(tmp_path / "cell.task", b"payload")
        assert seen == []  # only the finished name is ever visible
        assert (tmp_path / "cell.task").exists()


class TestInstallation:
    def test_install_uninstall(self):
        inj = FsFaultInjector([])
        fsfault.install(inj)
        assert fsfault.active() is inj
        fsfault.uninstall()
        assert fsfault.active() is None

    def test_env_spec_auto_installs_once(self, monkeypatch):
        monkeypatch.setenv(fsfault.ENV_VAR, "eio:3")
        monkeypatch.setattr(fsfault, "_ACTIVE", None)
        monkeypatch.setattr(fsfault, "_ENV_CHECKED", False)
        inj = fsfault.active()
        assert inj is not None
        assert [(f.action, f.index) for f in inj.faults] == [("eio", 3)]
        # The env is consulted once: uninstall wins afterwards.
        fsfault.uninstall()
        assert fsfault.active() is None
