"""Chaos acceptance for the I/O fault layer: the 88-run screen
survives scheduled disk faults.

Three end-to-end scenarios against the full 88-configuration
Plackett–Burman screen, each proving one leg of the degradation
contract through the real CLI:

* **transient fault window** (``rename:0:3``): the first cache put
  exhausts its single attempt and flips the cache's "writes are
  down" switch — degrade loudly — while the sealed ``results.json``
  publish rides out the remainder of the window on its retry budget.
  The run exits 0 in one go, byte-identical to a quiet screen, and
  ``repro verify`` passes with the cache empty.
* **persistent outage** (``enospc:0:always``): the disk never comes
  back, the journal's retry budget exhausts and the run fails
  *loudly and atomically* — no torn artifact, no temp residue, an
  empty journal.  A clean rerun on the same run directory completes
  byte-identically: faults cleared, nothing poisoned.
* **distributed worker under fault**: one worker runs its whole life
  with ``--fsfault`` transient windows; its spool publishes ride the
  retry budget and the screen completes byte-identically.

The byte-identity oracle is the same quiet single-host screen used
by ``tests/dist/test_chaos_acceptance.py``.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.cli import main

#: The paper's 88-run foldover design over one benchmark: 88 cells.
WORKLOAD = ["-b", "gzip", "-n", "400"]

#: Write/rename windows sized under every retry budget (journal: 3
#: attempts, sealed publishes: retries=2 -> 3 attempts) except the
#: cache's single attempt — so the cache degrades, everything else
#: rides it out, and the run completes in one go.
TRANSIENT_SPEC = "rename:0:3"

#: The disk never recovers: the run must die loudly, not wedge.
OUTAGE_SPEC = "enospc:0:always"

#: A faulted dist worker: early ENOSPC and rename windows, all
#: narrower than the spool's publish retry budget.
WORKER_SPEC = "enospc:5:2,rename:3:2"


def _env(fsfault_spec=None):
    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = os.pathsep.join(
        [src] + [p for p in env.get("PYTHONPATH", "").split(os.pathsep)
                 if p]
    )
    if fsfault_spec is not None:
        env["REPRO_FSFAULT_SPEC"] = fsfault_spec
    else:
        env.pop("REPRO_FSFAULT_SPEC", None)
    return env


def _screen(run_dir, *extra):
    return [sys.executable, "-m", "repro", "screen", *WORKLOAD,
            "--run-dir", str(run_dir), *extra]


@pytest.fixture(scope="module")
def reference_run(tmp_path_factory):
    """The sealed oracle: a quiet fault-free screen."""
    run_dir = tmp_path_factory.mktemp("fsfault-reference")
    assert main(["screen", *WORKLOAD, "--run-dir", str(run_dir)]) == 0
    return run_dir


@pytest.fixture(scope="module")
def faulted_run(tmp_path_factory):
    """One screen straight through a transient fault window."""
    run_dir = tmp_path_factory.mktemp("fsfault-transient")
    proc = subprocess.run(
        _screen(run_dir), env=_env(TRANSIENT_SPEC), timeout=300,
        capture_output=True, text=True,
    )
    return {"run_dir": run_dir, "rc": proc.returncode,
            "stderr": proc.stderr}


@pytest.fixture(scope="module")
def outage_run(tmp_path_factory):
    """A permanent outage, then the same run dir rerun clean."""
    run_dir = tmp_path_factory.mktemp("fsfault-outage")
    crashed = subprocess.run(
        _screen(run_dir), env=_env(OUTAGE_SPEC), timeout=300,
        capture_output=True, text=True,
    )
    journal = run_dir / "journal.jsonl"
    state = {
        "run_dir": run_dir,
        "crashed_rc": crashed.returncode,
        "crashed_stderr": crashed.stderr,
        "results_after_crash": (run_dir / "results.json").exists(),
        "journal_bytes_after_crash": (
            journal.stat().st_size if journal.exists() else 0),
        "residue_after_crash": [
            str(p) for p in run_dir.rglob("*.tmp-*")],
    }
    # Space restored: the rerun sees the same run dir, no spec.
    rerun = subprocess.run(
        _screen(run_dir), env=_env(), timeout=300,
        capture_output=True, text=True,
    )
    state["rerun_rc"] = rerun.returncode
    return state


@pytest.fixture(scope="module")
def dist_faulted_run(tmp_path_factory):
    """Broker in-process, one dist worker living under ``--fsfault``."""
    run_dir = tmp_path_factory.mktemp("fsfault-dist")
    spool = run_dir / "spool"
    worker = subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", str(spool),
         "--worker-id", "fsfault-w0", "--poll", "0.02",
         "--heartbeat-interval", "0.05", "--max-idle", "120",
         "--fsfault", WORKER_SPEC],
        env=_env(), stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        broker_rc = main(["screen", *WORKLOAD,
                          "--run-dir", str(run_dir),
                          "--dist", str(spool),
                          "--dist-attach-grace", "30"])
    finally:
        try:
            worker.wait(timeout=180)
        except subprocess.TimeoutExpired:
            worker.kill()
            worker.wait()
    return {"run_dir": run_dir, "spool": spool,
            "broker_rc": broker_rc, "worker_rc": worker.returncode}


class TestTransientWindow:
    def test_run_completed_in_one_go(self, faulted_run):
        assert faulted_run["rc"] == 0

    def test_cache_degraded_loudly(self, faulted_run, reference_run):
        # The window swallowed the first cache put; the switch
        # stopped the rest.  The reference persisted all 88 cells.
        assert "cache writes failing" in faulted_run["stderr"]
        assert list((faulted_run["run_dir"] / "cache").glob("*.pkl")) \
            == []
        assert len(list((reference_run / "cache").glob("*.pkl"))) == 88

    def test_put_failures_surfaced_in_metrics(self, faulted_run,
                                              capsys):
        assert main(["obs", "export", str(faulted_run["run_dir"]),
                     "--format", "prometheus"]) == 0
        out = capsys.readouterr().out
        assert "repro_cache_put_failures_total 1" in out

    def test_fault_spec_recorded_in_manifest(self, faulted_run):
        doc = json.loads(
            (faulted_run["run_dir"] / "manifest.json").read_text())
        assert doc["run"]["settings"]["fsfault"] == TRANSIENT_SPEC

    def test_results_byte_identical(self, faulted_run, reference_run):
        assert (faulted_run["run_dir"] / "results.json").read_bytes() \
            == (reference_run / "results.json").read_bytes()

    def test_verify_passes(self, faulted_run):
        assert main(["verify", str(faulted_run["run_dir"])]) == 0


class TestPersistentOutage:
    def test_crash_was_loud(self, outage_run):
        assert outage_run["crashed_rc"] != 0
        assert "ENOSPC" in outage_run["crashed_stderr"]

    def test_crash_was_atomic(self, outage_run):
        # No sealed artifact appeared, every journal append rolled
        # back to zero bytes, and no publish left a temp file behind.
        assert not outage_run["results_after_crash"]
        assert outage_run["journal_bytes_after_crash"] == 0
        assert outage_run["residue_after_crash"] == []

    def test_rerun_after_space_restored_completes(self, outage_run):
        assert outage_run["rerun_rc"] == 0

    def test_results_byte_identical(self, outage_run, reference_run):
        assert (outage_run["run_dir"] / "results.json").read_bytes() \
            == (reference_run / "results.json").read_bytes()

    def test_verify_passes(self, outage_run):
        assert main(["verify", str(outage_run["run_dir"])]) == 0


class TestDistWorkerUnderFault:
    def test_broker_and_worker_completed(self, dist_faulted_run):
        assert dist_faulted_run["broker_rc"] == 0
        assert dist_faulted_run["worker_rc"] == 0

    def test_spool_drained(self, dist_faulted_run):
        spool = dist_faulted_run["spool"]
        assert (spool / "drain").exists()
        assert not list((spool / "pending").glob("*.task"))
        assert not list((spool / "leased").glob("*.task"))

    def test_results_byte_identical(self, dist_faulted_run,
                                    reference_run):
        chaotic = dist_faulted_run["run_dir"] / "results.json"
        assert chaotic.read_bytes() \
            == (reference_run / "results.json").read_bytes()

    def test_verify_passes(self, dist_faulted_run):
        assert main(["verify", str(dist_faulted_run["run_dir"])]) == 0
