"""Unit and property tests for the retention GC layer.

The safety claim this file pins (the issue's acceptance property):
**``repro gc`` under any budget never evicts a pinned key** — not one
referenced by an in-flight run, not one a journal names, no matter
how tight the budget or how the mtimes are arranged.  Everything else
(LRU order, budget arithmetic, orphan temp cleanup, compaction
byte-identity) is conventional unit coverage.
"""

import json
import os
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.guard import retention
from repro.guard.retention import (
    GCReport,
    cache_stats,
    compact_journal,
    gc_cache,
    gc_quarantine,
    gc_run_dir,
    gc_spool,
    journal_keys,
    spool_inflight_keys,
)


def _entry(directory, name, payload=b"x", *, age=0.0,
           suffix=".pkl"):
    """Write one cache-style entry, backdated ``age`` seconds."""
    path = directory / f"{name}{suffix}"
    path.write_bytes(payload)
    if age:
        stamp = time.time() - age
        os.utime(path, (stamp, stamp))
    return path


class TestCacheStats:
    def test_inventory(self, tmp_path):
        _entry(tmp_path, "a", b"12345")
        _entry(tmp_path, "b", b"123")
        (tmp_path / "quarantine").mkdir()
        _entry(tmp_path / "quarantine", "bad", b"12", suffix=".torn")
        stats = cache_stats(tmp_path)
        assert stats.entries == 2
        assert stats.bytes == 8
        assert stats.quarantine_entries == 1
        assert stats.quarantine_bytes == 2
        assert stats.to_dict()["entries"] == 2

    def test_empty_directory(self, tmp_path):
        stats = cache_stats(tmp_path / "nowhere")
        assert stats.entries == 0
        assert stats.quarantine_entries == 0


class TestGcCache:
    def test_no_budget_is_a_no_op(self, tmp_path):
        _entry(tmp_path, "a")
        report = gc_cache(tmp_path)
        assert report.cache_evicted == 0
        assert (tmp_path / "a.pkl").exists()

    def test_oldest_evicted_first(self, tmp_path):
        _entry(tmp_path, "old", age=300)
        _entry(tmp_path, "mid", age=200)
        _entry(tmp_path, "new", age=100)
        report = gc_cache(tmp_path, budget_entries=1)
        assert report.cache_evicted == 2
        assert not (tmp_path / "old.pkl").exists()
        assert not (tmp_path / "mid.pkl").exists()
        assert (tmp_path / "new.pkl").exists()

    def test_byte_budget(self, tmp_path):
        _entry(tmp_path, "old", b"x" * 100, age=300)
        _entry(tmp_path, "new", b"x" * 100, age=100)
        report = gc_cache(tmp_path, budget_bytes=150)
        assert report.cache_evicted == 1
        assert report.cache_evicted_bytes == 100
        assert (tmp_path / "new.pkl").exists()

    def test_pinned_skipped_even_over_budget(self, tmp_path):
        _entry(tmp_path, "pinned", age=300)
        report = gc_cache(tmp_path, budget_entries=0,
                          pinned={"pinned"})
        assert report.cache_evicted == 0
        assert report.cache_pinned_kept == 1
        assert (tmp_path / "pinned.pkl").exists()

    def test_dry_run_deletes_nothing(self, tmp_path):
        _entry(tmp_path, "a", age=100)
        report = gc_cache(tmp_path, budget_entries=0, dry_run=True)
        assert report.dry_run
        assert report.cache_evicted == 1
        assert (tmp_path / "a.pkl").exists()


class TestPinnedNeverEvictedProperty:
    """The acceptance property, driven by hypothesis."""

    @given(
        ages=st.lists(st.integers(0, 10_000), min_size=1,
                      max_size=12, unique=True),
        pinned_mask=st.lists(st.booleans(), min_size=12, max_size=12),
        budget_entries=st.one_of(st.none(), st.integers(0, 12)),
        budget_bytes=st.one_of(st.none(), st.integers(0, 400)),
    )
    @settings(max_examples=60, deadline=None)
    def test_gc_never_touches_pinned_keys(self, tmp_path_factory,
                                          ages, pinned_mask,
                                          budget_entries,
                                          budget_bytes):
        tmp_path = tmp_path_factory.mktemp("gc-prop")
        pinned = set()
        for n, age in enumerate(ages):
            name = f"key{n}"
            _entry(tmp_path, name, b"x" * 40, age=age)
            if pinned_mask[n]:
                pinned.add(name)
        gc_cache(tmp_path, budget_bytes=budget_bytes,
                 budget_entries=budget_entries, pinned=pinned)
        survivors = {p.stem for p in tmp_path.glob("*.pkl")}
        assert pinned <= survivors, \
            "gc evicted a pinned in-flight/journal-referenced key"


class TestGcQuarantine:
    def test_oldest_pruned_first(self, tmp_path):
        _entry(tmp_path, "old", age=300, suffix=".torn")
        _entry(tmp_path, "new", age=100, suffix=".torn")
        report = gc_quarantine(tmp_path, budget_entries=1)
        assert report.quarantine_pruned == 1
        assert (tmp_path / "new.torn").exists()
        assert not (tmp_path / "old.torn").exists()

    def test_missing_directory(self, tmp_path):
        report = gc_quarantine(tmp_path / "gone", budget_entries=1)
        assert report.quarantine_pruned == 0


class TestPinningSources:
    def test_journal_keys_liberal(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        journal.write_bytes(
            json.dumps({"key": "good", "sha": "..."}).encode() + b"\n"
            + b"not json at all\n"
            + json.dumps({"key": "damaged-but-named"}).encode() + b"\n"
            + json.dumps({"no_key": 1}).encode() + b"\n"
        )
        assert journal_keys(journal) == {"good", "damaged-but-named"}

    def test_journal_keys_missing_file(self, tmp_path):
        assert journal_keys(tmp_path / "gone.jsonl") == set()

    def test_spool_inflight(self, tmp_path):
        (tmp_path / "pending").mkdir()
        (tmp_path / "leased").mkdir()
        (tmp_path / "pending" / "k1.task").write_bytes(b"")
        (tmp_path / "leased" / "k2.task").write_bytes(b"")
        (tmp_path / "leased" / "k3.lease").write_bytes(b"")
        assert spool_inflight_keys(tmp_path) == {"k1", "k2", "k3"}


class TestGcSpool:
    def _spool(self, tmp_path):
        for sub in ("pending", "leased", "results"):
            (tmp_path / sub).mkdir(parents=True, exist_ok=True)
        return tmp_path

    def test_consumed_results_removed(self, tmp_path):
        spool = self._spool(tmp_path)
        _entry(spool / "results", "done", age=10, suffix=".result")
        _entry(spool / "results", "kept", age=10, suffix=".result")
        report = gc_spool(spool, consumed={"done"})
        assert report.spool_results_removed == 1
        assert (spool / "results" / "kept.result").exists()
        assert not (spool / "results" / "done.result").exists()

    def test_inflight_keys_never_removed(self, tmp_path):
        spool = self._spool(tmp_path)
        _entry(spool / "results", "racing", age=10, suffix=".result")
        (spool / "pending" / "racing.task").write_bytes(b"")
        report = gc_spool(spool, consumed={"racing"})
        assert report.spool_results_removed == 0
        assert (spool / "results" / "racing.result").exists()

    def test_budget_keeps_newest(self, tmp_path):
        spool = self._spool(tmp_path)
        for n in range(4):
            _entry(spool / "results", f"k{n}", age=400 - n * 100,
                   suffix=".result")
        report = gc_spool(spool, consumed={f"k{n}" for n in range(4)},
                          budget_results=2)
        assert report.spool_results_removed == 2
        kept = sorted(p.stem for p in
                      (spool / "results").glob("*.result"))
        assert kept == ["k2", "k3"]  # the two newest

    def test_orphaned_tmp_of_dead_pid_removed(self, tmp_path):
        spool = self._spool(tmp_path)
        # No live process has this pid (max pid is far smaller).
        dead = spool / "results" / ".x.result.tmp-4000000-ab"
        dead.write_bytes(b"partial")
        live = spool / "results" / f".y.result.tmp-{os.getpid()}-cd"
        live.write_bytes(b"in-progress")
        report = gc_spool(spool, consumed=set())
        assert report.spool_tmp_removed == 1
        assert not dead.exists()
        assert live.exists()  # its writer (this test) is alive


class TestCompactJournal:
    def _line(self, key, n=0):
        return json.dumps({"key": key, "n": n}).encode() + b"\n"

    def test_duplicates_keep_last_raw_bytes(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        journal.write_bytes(
            self._line("a", 1) + self._line("b", 1)
            + self._line("a", 2)
        )
        report = compact_journal(journal)
        assert report.journal_lines_dropped == 1
        data = journal.read_bytes()
        assert data == self._line("a", 2) + self._line("b", 1)

    def test_torn_tail_and_damage_dropped(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        journal.write_bytes(
            self._line("a") + b"garbage line\n"
            + b'{"key": "torn", "n"'  # no trailing newline
        )
        report = compact_journal(journal)
        assert report.journal_lines_dropped == 2
        assert journal.read_bytes() == self._line("a")

    def test_clean_journal_untouched(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        payload = self._line("a") + self._line("b")
        journal.write_bytes(payload)
        before = journal.stat().st_mtime_ns
        report = compact_journal(journal)
        assert report.journal_lines_dropped == 0
        assert journal.stat().st_mtime_ns == before  # no rewrite

    def test_dry_run_reports_without_rewriting(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        payload = self._line("a", 1) + self._line("a", 2)
        journal.write_bytes(payload)
        report = compact_journal(journal, dry_run=True)
        assert report.journal_lines_dropped == 1
        assert journal.read_bytes() == payload


class TestGcRunDir:
    def test_journal_pins_cache_and_consumes_spool(self, tmp_path):
        cache = tmp_path / "cache"
        cache.mkdir()
        _entry(cache, "journaled", age=500)
        _entry(cache, "stray", age=400)
        journal = tmp_path / "journal.jsonl"
        journal.write_bytes(
            json.dumps({"key": "journaled"}).encode() + b"\n")
        spool = tmp_path / "spool"
        (spool / "results").mkdir(parents=True)
        (spool / "pending").mkdir()
        _entry(spool / "results", "journaled", age=10,
               suffix=".result")
        report = gc_run_dir(tmp_path, cache_budget_entries=0)
        # The journal-referenced key survives the tightest budget...
        assert (cache / "journaled.pkl").exists()
        assert not (cache / "stray.pkl").exists()
        assert report.cache_pinned_kept == 1
        # ...while its (journal-covered) spool result is consumed.
        assert report.spool_results_removed == 1

    def test_report_dict_shape(self):
        doc = GCReport().to_dict()
        assert set(doc) == {"dry_run", "cache", "quarantine",
                            "spool", "journal"}

    def test_merge_accumulates(self):
        a = GCReport(cache_evicted=1, spool_tmp_removed=2)
        b = GCReport(cache_evicted=3)
        a.merge(b)
        assert a.cache_evicted == 4
        assert a.spool_tmp_removed == 2


class TestResultCacheBudgetIntegration:
    """The inline (engine-side) budget path of ResultCache."""

    def test_put_evicts_unpinned_lru_entries(self, tmp_path):
        from repro.exec.cache import ResultCache
        from repro.cpu import MachineConfig, simulate
        from repro.workloads import benchmark_trace

        stats = simulate(MachineConfig(),
                         benchmark_trace("gzip", 200))
        cache = ResultCache(tmp_path, budget_entries=2)
        cache.put("k1", stats)
        cache.put("k2", stats)
        cache.put("k3", stats)
        # All three keys were put by *this* process, so all are
        # pinned: the budget must not break the in-flight run.
        assert cache.evicted == 0
        assert len(list(tmp_path.glob("*.pkl"))) == 3
        # A fresh process (fresh pin set) sees the same directory
        # over budget and may evict the LRU entries it never touched.
        stale = ResultCache(tmp_path, budget_entries=2,
                            version=cache.version)
        stale.put("k4", stats)
        assert stale.evicted > 0
        assert (tmp_path / "k4.pkl").exists()

    def test_quarantine_budget_prunes_oldest(self, tmp_path):
        from repro.exec.cache import ResultCache

        cache = ResultCache(tmp_path, quarantine_entries=2)
        for n in range(4):
            # Corrupt entries: raw junk under the final name.
            _entry(tmp_path, f"bad{n}", b"not a seal", age=400 - n)
            assert cache.get(f"bad{n}") is None  # quarantines it
        quarantine = tmp_path / "quarantine"
        assert cache.quarantine_pruned == 2
        assert len(list(quarantine.iterdir())) == 2
        assert cache.counters()["quarantine_pruned"] == 2
