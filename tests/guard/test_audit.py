"""Tests for sampled re-execution audits (repro.guard.audit) and
their wiring through the execution engine."""

import dataclasses

import pytest

from repro.cpu import MachineConfig
from repro.exec import Journal, ResultCache, grid_tasks, run_grid, task_key
import repro.exec.engine as engine
from repro.guard import (
    AuditMismatch,
    AuditPolicy,
    coerce_policy,
    differing_fields,
    verify_restored,
)
from repro.workloads import benchmark_trace


@pytest.fixture(scope="module")
def traces():
    return {
        "gzip": benchmark_trace("gzip", 1200),
        "mcf": benchmark_trace("mcf", 1200),
    }


class TestPolicy:
    def test_selection_is_deterministic(self):
        policy = AuditPolicy(fraction=0.5, seed=7)
        keys = [f"key-{i}" for i in range(64)]
        assert [policy.selects(k) for k in keys] == \
            [policy.selects(k) for k in keys]

    def test_fraction_extremes(self):
        assert not any(AuditPolicy(0.0).selects(f"k{i}")
                       for i in range(32))
        assert all(AuditPolicy(1.0).selects(f"k{i}")
                   for i in range(32))

    def test_fraction_roughly_respected(self):
        policy = AuditPolicy(fraction=0.25, seed=0)
        chosen = sum(policy.selects(f"key-{i}") for i in range(2000))
        assert 350 < chosen < 650

    def test_seed_changes_the_subset(self):
        keys = [f"key-{i}" for i in range(256)]
        a = {k for k in keys if AuditPolicy(0.3, seed=1).selects(k)}
        b = {k for k in keys if AuditPolicy(0.3, seed=2).selects(k)}
        assert a != b

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError):
            AuditPolicy(fraction=1.5)
        with pytest.raises(ValueError):
            AuditPolicy(fraction=-0.1)

    def test_coerce(self):
        assert coerce_policy(None).fraction == 0.0
        assert coerce_policy(0.25).fraction == 0.25
        policy = AuditPolicy(0.5, seed=3)
        assert coerce_policy(policy) is policy


@dataclasses.dataclass
class FakeStats:
    cycles: int
    instructions: int


class TestComparison:
    def test_differing_fields_names_the_divergence(self):
        a = FakeStats(cycles=10, instructions=5)
        b = FakeStats(cycles=11, instructions=5)
        assert differing_fields(a, b) == ["cycles"]
        assert differing_fields(a, a) == []

    def test_non_dataclass_fallback(self):
        assert differing_fields(1, 2) == ["value"]
        assert differing_fields("x", "x") == []

    def test_verify_restored_raises_with_both_payloads(self):
        a = FakeStats(cycles=10, instructions=5)
        b = FakeStats(cycles=11, instructions=6)
        with pytest.raises(AuditMismatch) as info:
            verify_restored("deadbeef" * 8, 3, "cache", a, b)
        exc = info.value
        assert exc.reason == "audit-mismatch"
        assert exc.expected is a and exc.actual is b
        assert exc.fields == ("cycles", "instructions")
        assert exc.index == 3 and exc.source == "cache"

    def test_verify_restored_silent_on_agreement(self):
        a = FakeStats(cycles=10, instructions=5)
        verify_restored("k", 0, "journal", a, FakeStats(10, 5))


class TestEngineAudit:
    def test_clean_audit_is_bit_identical(self, tmp_path, traces):
        tasks = grid_tasks([MachineConfig()], traces)
        cache = ResultCache(tmp_path / "cache")
        cold = run_grid(tasks, cache=cache)
        audited = run_grid(tasks, cache=cache,
                           audit=AuditPolicy(fraction=1.0))
        assert list(cold) == list(audited)

    def test_audit_reexecutes_selected_hits(self, tmp_path, traces,
                                            monkeypatch):
        tasks = grid_tasks([MachineConfig()], traces)
        cache = ResultCache(tmp_path / "cache")
        run_grid(tasks, cache=cache)
        calls = {"n": 0}
        real = engine.simulate

        def counting(*args, **kwargs):
            calls["n"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(engine, "simulate", counting)
        run_grid(tasks, cache=cache, audit=0.0)
        assert calls["n"] == 0          # warm, no audit: pure hits
        run_grid(tasks, cache=cache, audit=1.0)
        assert calls["n"] == len(tasks)  # full audit: every hit re-run

    def test_tampered_cache_entry_raises_mismatch(self, tmp_path,
                                                  traces):
        tasks = grid_tasks([MachineConfig()], traces)
        cache = ResultCache(tmp_path / "cache")
        run_grid(tasks, cache=cache)
        # Tamper in the trusted layer: bump a counter in memory so the
        # seal still verifies but the content is stale.
        key = task_key(tasks[0])
        stats = cache._memory[key]
        cache._memory[key] = dataclasses.replace(
            stats, cycles=stats.cycles + 1
        )
        with pytest.raises(AuditMismatch) as info:
            run_grid(tasks, cache=cache, audit=1.0)
        exc = info.value
        assert exc.key == key
        assert exc.source == "cache"
        assert "cycles" in exc.fields
        assert exc.expected.cycles == exc.actual.cycles + 1

    def test_tampered_journal_entry_raises_mismatch(self, tmp_path,
                                                    traces):
        tasks = grid_tasks([MachineConfig()], traces)
        journal_path = tmp_path / "journal.jsonl"
        with Journal(journal_path) as journal:
            run_grid(tasks, journal=journal)
        # Re-record a stale value under the first task's key in a
        # fresh journal: the seal machinery is honest, the value lies.
        key = task_key(tasks[0])
        with Journal(journal_path) as journal:
            stats = journal.get(key)
            tampered = tmp_path / "tampered.jsonl"
            with Journal(tampered) as bad:
                for other in journal.keys():
                    if other == key:
                        bad.record(other, dataclasses.replace(
                            stats, cycles=stats.cycles + 1
                        ))
                    else:
                        bad.record(other, journal.get(other))
        with Journal(tampered) as bad, \
                pytest.raises(AuditMismatch) as info:
            run_grid(tasks, journal=bad, audit=1.0)
        assert info.value.source == "journal"

    def test_audit_counters_flow_through_telemetry(self, tmp_path,
                                                   traces):
        from repro.obs import Telemetry

        tasks = grid_tasks([MachineConfig()], traces)
        cache = ResultCache(tmp_path / "cache")
        run_grid(tasks, cache=cache)
        telemetry = Telemetry.armed(metrics=True)
        run_grid(tasks, cache=cache, audit=1.0, telemetry=telemetry)
        snapshot = telemetry.snapshot()
        assert snapshot["audit.selected"]["value"] == len(tasks)
        assert snapshot["audit.passed"]["value"] == len(tasks)
        assert snapshot["audit.violations"]["value"] == 0
