"""Tests for the sealed-artifact envelope (repro.guard.seal)."""

import json

import pytest

from repro.guard import (
    MAGIC,
    SealCorrupt,
    SealMissing,
    SealTruncated,
    SealVersionDrift,
    check,
    read_header,
    seal,
)

PAYLOAD = b"the payload bytes \x00\xff binary ok"


def sealed(**kwargs):
    options = dict(kind="test-kind", schema=3, simulator_version="1.0")
    options.update(kwargs)
    return seal(PAYLOAD, **options)


class TestRoundtrip:
    def test_check_returns_payload(self):
        assert check(sealed(), kind="test-kind", schema=3,
                     simulator_version="1.0") == PAYLOAD

    def test_envelope_is_self_describing(self):
        blob = sealed()
        assert blob.startswith(MAGIC)
        header = json.loads(blob.split(b"\n")[1])
        assert header["kind"] == "test-kind"
        assert header["schema"] == 3
        assert header["sim"] == "1.0"
        assert header["len"] == len(PAYLOAD)

    def test_read_header_reports_offset(self):
        blob = sealed()
        header = read_header(blob)
        offset = header["_payload_offset"]
        assert blob[offset:] == PAYLOAD

    def test_empty_payload(self):
        blob = seal(b"", kind="k", schema=1)
        assert check(blob, kind="k", schema=1) == b""

    def test_skipped_checks(self):
        # schema=None / simulator_version=None skip the drift checks.
        blob = sealed()
        assert check(blob, kind="test-kind") == PAYLOAD
        assert check(blob, kind="test-kind", schema=3,
                     simulator_version=None) == PAYLOAD

    def test_no_sim_in_header_skips_sim_check(self):
        blob = seal(PAYLOAD, kind="k", schema=1)
        assert check(blob, kind="k", schema=1,
                     simulator_version="anything") == PAYLOAD


class TestFailures:
    def test_missing_seal(self):
        with pytest.raises(SealMissing) as info:
            check(b"just some bytes", kind="test-kind")
        assert info.value.reason == "unsealed"

    def test_flipped_payload_byte_is_checksum(self):
        blob = bytearray(sealed())
        blob[-5] ^= 0xFF
        with pytest.raises(SealCorrupt) as info:
            check(bytes(blob), kind="test-kind", schema=3)
        assert info.value.reason == "checksum"

    def test_truncated_payload(self):
        with pytest.raises(SealTruncated) as info:
            check(sealed()[:-4], kind="test-kind", schema=3)
        assert info.value.reason == "truncated"

    def test_trailing_garbage(self):
        with pytest.raises(SealCorrupt) as info:
            check(sealed() + b"extra", kind="test-kind", schema=3)
        assert info.value.reason == "trailing-garbage"

    def test_wrong_kind(self):
        with pytest.raises(SealCorrupt) as info:
            check(sealed(), kind="other-kind")
        assert info.value.reason == "wrong-kind"

    def test_schema_drift(self):
        with pytest.raises(SealVersionDrift) as info:
            check(sealed(), kind="test-kind", schema=4)
        assert info.value.reason == "schema-drift"

    def test_simulator_drift(self):
        with pytest.raises(SealVersionDrift) as info:
            check(sealed(), kind="test-kind", schema=3,
                  simulator_version="2.0")
        assert info.value.reason == "version-drift"

    def test_drift_diagnosed_before_checksum(self):
        # A stale *and* corrupt artifact reports drift: regenerating
        # is the actionable fix either way.
        blob = bytearray(sealed())
        blob[-1] ^= 0xFF
        with pytest.raises(SealVersionDrift):
            check(bytes(blob), kind="test-kind", schema=4)

    def test_unparseable_header(self):
        blob = MAGIC + b"not json\n" + PAYLOAD
        with pytest.raises(SealCorrupt) as info:
            check(blob, kind="test-kind")
        assert info.value.reason == "malformed-header"

    def test_unterminated_header(self):
        with pytest.raises(SealCorrupt) as info:
            check(MAGIC + b'{"kind": "x"', kind="x")
        assert info.value.reason == "malformed-header"

    def test_header_without_length(self):
        header = json.dumps({"kind": "x", "sha256": "0" * 64})
        blob = MAGIC + header.encode() + b"\n" + PAYLOAD
        with pytest.raises(SealCorrupt) as info:
            check(blob, kind="x")
        assert info.value.reason == "malformed-header"
