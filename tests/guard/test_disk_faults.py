"""EROFS / sick-disk degradation contracts, writer by writer.

The run directory going read-only (EROFS — a failed-over network
mount, a filesystem remounted ``ro`` after journal errors) must never
crash a grid.  Every durable writer satisfies one of the two
contracts from ``repro.guard.fsfault``:

* **degrade loudly** — cache puts and event-stream lanes self-disable
  with one warning and a counter, and the run completes;
* **fail atomically** — spool publishes and journal appends raise
  without ever exposing a torn artifact.

The injector's ``erofs`` action makes these tests deterministic and
root-proof; the chmod-based tests exercise the *real* kernel
permission path and skip where chmod cannot revoke writes (running
as root).
"""

import errno
import warnings

import pytest

from repro.cpu import MachineConfig, simulate
from repro.exec import ResultCache, SimTask, run_grid
from repro.exec.journal import Journal
from repro.dist.spool import Spool
from repro.guard import fsfault
from repro.guard.fsfault import ALWAYS, FsFault, FsFaultInjector, injected
from repro.obs.stream import EventWriter
from repro.workloads import benchmark_trace


@pytest.fixture(autouse=True)
def _no_leftover_injector():
    fsfault.uninstall()
    yield
    fsfault.uninstall()


@pytest.fixture(scope="module")
def stats():
    return simulate(MachineConfig(), benchmark_trace("gzip", 200))


def _tasks(n=2):
    trace = benchmark_trace("gzip", 400)
    return [SimTask(config=MachineConfig(), trace=trace)
            for _ in range(n)]


def _erofs_always():
    return FsFaultInjector([FsFault("erofs", 0, count=ALWAYS)])


class TestInjectedErofs:
    def test_vfs_write_raises_erofs(self, tmp_path):
        with injected(_erofs_always()):
            with open(tmp_path / "f", "wb") as handle:
                with pytest.raises(OSError) as err:
                    fsfault.vfs_write(handle, b"x")
        assert err.value.errno == errno.EROFS

    def test_cache_put_degrades_and_grid_completes(self, tmp_path):
        cache = ResultCache(tmp_path)
        with injected(_erofs_always()):
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                result = run_grid(_tasks(), cache=cache)
        assert all(s is not None for s in result)
        # One failure flips the "writes are down" switch; no further
        # puts are attempted, so exactly one warning and one count.
        assert cache.put_failures == 1
        relevant = [w for w in caught
                    if "cache writes failing" in str(w.message)]
        assert len(relevant) == 1
        # Nothing torn became visible: no entries, no temp residue.
        assert list(tmp_path.glob("*.pkl")) == []
        assert list(tmp_path.glob(".*.tmp-*")) == []

    def test_stream_lane_disables_once_and_stays_quiet(self, tmp_path):
        path = tmp_path / "events" / "main.events.jsonl"
        writer = EventWriter(path, lane="main")
        with injected(_erofs_always()):
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                writer.emit("task-start", "run")
                writer.emit("task-finish", "run")
        relevant = [w for w in caught
                    if "disabling the lane" in str(w.message)]
        assert len(relevant) == 1  # warn once, then silent
        # The lane stays down even after the outage clears — a lane
        # with a hole in it would be worse than no lane at all.
        writer.emit("task-start", "run")
        assert path.read_bytes() == b""

    def test_spool_publish_fails_atomically(self, tmp_path):
        spool = Spool(tmp_path)
        spool.ensure()
        with injected(_erofs_always()):
            with pytest.raises(OSError) as err:
                spool.write_result("k", index=0, attempt=1, worker="w",
                                   ok=False, error_type="Boom",
                                   message="sick disk")
        assert err.value.errno == errno.EROFS
        # The destination name never appeared and no temp survived.
        assert list((tmp_path / "results").iterdir()) == []

    def test_journal_record_rolls_back_exactly(self, tmp_path, stats):
        path = tmp_path / "journal.jsonl"
        journal = Journal(path)
        journal.record("good", stats)
        before = path.read_bytes()
        with injected(FsFaultInjector(
                [FsFault("torn", 0, count=ALWAYS)])):
            with pytest.raises(OSError):
                journal.record("bad", stats)
        journal.close()
        # Every attempt was counted and rolled back under the lock:
        # the journal is byte-identical to before the failed record.
        assert journal.write_failures == journal._WRITE_ATTEMPTS
        assert path.read_bytes() == before


class TestReadOnlyRunDir:
    """The real EROFS-ish path: a directory with writes revoked.

    Skips when chmod cannot revoke write permission (running as
    root, some overlay filesystems) — the injector tests above cover
    the same contracts unconditionally.
    """

    @pytest.fixture
    def readonly_dir(self, tmp_path):
        target = tmp_path / "run"
        target.mkdir()
        target.chmod(0o555)
        probe = target / "probe"
        try:
            probe.write_bytes(b"x")
        except OSError:
            pass
        else:
            probe.unlink()
            target.chmod(0o755)
            pytest.skip("chmod cannot revoke writes here (root?)")
        yield target
        target.chmod(0o755)

    def test_cache_on_readonly_dir_degrades(self, readonly_dir):
        cache = ResultCache(readonly_dir)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = run_grid(_tasks(), cache=cache)
        assert all(s is not None for s in result)
        assert cache.put_failures == 1
        assert any("cache writes failing" in str(w.message)
                   for w in caught)

    def test_stream_on_readonly_dir_disables(self, readonly_dir):
        writer = EventWriter(readonly_dir / "main.events.jsonl",
                             lane="main")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            writer.emit("task-start", "run")
        assert any("disabling the lane" in str(w.message)
                   for w in caught)

    def test_spool_result_on_readonly_dir_fails_atomically(
            self, tmp_path, readonly_dir):
        spool = Spool(tmp_path / "spool")
        spool.ensure()
        # Revoke writes on results/ only, with the same root guard.
        spool.results_dir.chmod(0o555)
        try:
            with pytest.raises(OSError):
                spool.write_result("k", index=0, attempt=1,
                                   worker="w", ok=False,
                                   error_type="Boom", message="ro")
            assert list(spool.results_dir.iterdir()) == []
        finally:
            spool.results_dir.chmod(0o755)
