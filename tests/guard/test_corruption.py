"""Mutation-style corruption suite.

Flips bytes (and truncates, and appends) in every durable artifact —
cache entries, journal lines, trace archives, run manifests — and
asserts that each loader *detects* the damage, *names* it with a
stable reason slug, and *quarantines* rather than trusts it.  No
mutation may ever load successfully as if nothing happened.
"""

import json
import warnings

import pytest

from repro.cpu import MachineConfig, simulate
from repro.exec import Journal, ResultCache, scan_journal
from repro.guard import SealError, TraceCorrupt
from repro.obs import RunManifest, load_manifest
from repro.workloads import benchmark_trace, load_trace, save_trace

#: Every slug a loader may name.  Detection must be *named*: a reason
#: outside this vocabulary is a regression even if the load fails.
KNOWN_REASONS = {
    "unsealed", "truncated", "checksum", "malformed-header",
    "wrong-kind", "schema-drift", "version-drift", "trailing-garbage",
    "unpicklable", "invalid-stats", "torn", "malformed",
    "format-drift",
}


@pytest.fixture(scope="module")
def trace():
    return benchmark_trace("gzip", 600)


@pytest.fixture(scope="module")
def stats(trace):
    return simulate(MachineConfig(), trace, warmup=True)


def flip(path, offset):
    data = bytearray(path.read_bytes())
    data[offset % len(data)] ^= 0xFF
    path.write_bytes(bytes(data))


class TestCacheEntryMutations:
    #: Offsets spanning the magic, the header and the pickle payload.
    OFFSETS = [0, 5, 30, 80, 200, -40, -1]

    @pytest.mark.parametrize("offset", OFFSETS)
    def test_flip_is_detected_named_quarantined(self, tmp_path, stats,
                                                offset):
        cache = ResultCache(tmp_path / "cache")
        cache.put("k" * 64, stats)
        entry = tmp_path / "cache" / ("k" * 64 + ".pkl")
        flip(entry, offset)
        fresh = ResultCache(tmp_path / "cache")
        assert fresh.get("k" * 64) is None
        assert fresh.corrupt == 1
        (reason, count), = fresh.quarantined.items()
        assert count == 1 and reason in KNOWN_REASONS
        assert not entry.exists()
        quarantined = list((tmp_path / "cache" / "quarantine").iterdir())
        assert [f.name for f in quarantined] == \
            [f"{'k' * 64}.{reason}.pkl"]

    def test_truncation(self, tmp_path, stats):
        cache = ResultCache(tmp_path / "cache")
        cache.put("k" * 64, stats)
        entry = tmp_path / "cache" / ("k" * 64 + ".pkl")
        entry.write_bytes(entry.read_bytes()[:-30])
        fresh = ResultCache(tmp_path / "cache")
        assert fresh.get("k" * 64) is None
        assert fresh.quarantined == {"truncated": 1}

    def test_legacy_bare_pickle(self, tmp_path, stats):
        import pickle

        cache = ResultCache(tmp_path / "cache")
        entry = tmp_path / "cache" / ("k" * 64 + ".pkl")
        entry.write_bytes(pickle.dumps(stats))
        assert cache.get("k" * 64) is None
        assert cache.quarantined == {"unsealed": 1}


class TestJournalMutations:
    @pytest.fixture()
    def journal_path(self, tmp_path, stats):
        path = tmp_path / "journal.jsonl"
        with Journal(path) as journal:
            for i in range(4):
                journal.record(f"key-{i}" + "0" * 58, stats)
        return path

    @pytest.mark.parametrize("line,offset", [
        (0, 10), (1, 40), (2, 120), (3, -10),
    ])
    def test_flipped_line_is_dropped_with_reason(self, journal_path,
                                                 line, offset):
        lines = journal_path.read_bytes().splitlines(keepends=True)
        mutated = bytearray(lines[line])
        mutated[offset % (len(mutated) - 1)] ^= 0xFF
        lines[line] = bytes(mutated)
        journal_path.write_bytes(b"".join(lines))
        with pytest.warns(RuntimeWarning, match="journal repair"):
            journal = Journal(journal_path)
        assert journal.corrupt == 1
        assert len(journal) == 3
        (reason, count), = journal.dropped.items()
        assert count == 1 and reason in KNOWN_REASONS
        scan = scan_journal(journal_path)
        assert scan.invalid == ((line + 1, reason),)

    def test_truncated_tail_is_torn(self, journal_path):
        data = journal_path.read_bytes()
        journal_path.write_bytes(data[:-25])
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            journal = Journal(journal_path)
        assert journal.dropped == {"torn": 1}
        assert len(journal) == 3


class TestTraceMutations:
    @pytest.fixture()
    def archive(self, tmp_path, trace):
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        return path

    @pytest.mark.parametrize("offset", [0, 7, 40, 90, 500, -1])
    def test_flip_raises_named_seal_error(self, archive, offset):
        flip(archive, offset)
        with pytest.raises((SealError, TraceCorrupt)) as info:
            load_trace(archive, strict=True)
        assert info.value.reason in KNOWN_REASONS | {
            "structure", "pc-flow", "opcode-domain",
            "branch-kind-domain", "pc-domain", "address-domain",
        }

    def test_truncation_is_named(self, archive):
        archive.write_bytes(archive.read_bytes()[:-100])
        with pytest.raises(SealError) as info:
            load_trace(archive)
        assert info.value.reason == "truncated"

    def test_trailing_garbage_is_named(self, archive):
        archive.write_bytes(archive.read_bytes() + b"xx")
        with pytest.raises(SealError) as info:
            load_trace(archive)
        assert info.value.reason == "trailing-garbage"

    def test_round_trip_still_clean(self, archive, trace):
        # Control: the unmutated archive loads strictly.
        loaded = load_trace(archive, strict=True)
        assert loaded.fingerprint() == trace.fingerprint()


class TestManifestMutations:
    @pytest.fixture()
    def manifest_path(self, tmp_path):
        manifest = RunManifest(command="screen", fingerprint="f" * 64)
        manifest.finalize(status="completed")
        path = tmp_path / "manifest.json"
        manifest.write(path)
        return path

    def test_control_loads_clean(self, manifest_path):
        doc = load_manifest(manifest_path)
        assert doc["run"]["command"] == "screen"

    @pytest.mark.parametrize("needle", [
        b'"command"', b'"exit_status"', b'"fingerprint"', b'"sha256"',
    ])
    def test_flip_is_detected(self, manifest_path, needle):
        # Flip the low bit of the first character of the named field's
        # value: still valid JSON, but the digest no longer matches.
        data = bytearray(manifest_path.read_bytes())
        position = data.index(needle) + len(needle) + 3
        data[position] ^= 0x01
        manifest_path.write_bytes(bytes(data))
        with pytest.raises(SealError) as info:
            load_manifest(manifest_path)
        assert info.value.reason in KNOWN_REASONS

    def test_field_edit_breaks_digest(self, manifest_path):
        doc = json.loads(manifest_path.read_text())
        doc["run"]["command"] = "evil"
        manifest_path.write_text(json.dumps(doc))
        with pytest.raises(SealError) as info:
            load_manifest(manifest_path)
        assert info.value.reason == "checksum"

    def test_stripped_integrity_is_unsealed(self, manifest_path):
        doc = json.loads(manifest_path.read_text())
        del doc["integrity"]
        manifest_path.write_text(json.dumps(doc))
        with pytest.raises(SealError) as info:
            load_manifest(manifest_path)
        assert info.value.reason == "unsealed"
