"""The benchmark-manifest regression gate (repro.guard.bench).

``repro bench check`` compares fresh ``BENCH_<label>.json`` manifests
against committed baselines: deterministic simulator totals bit-exact,
wall time within a tolerance, and everything else — different
experiment, version drift, tampering, missing files — *incomparable*
rather than silently passed or failed.
"""

import json

import pytest

from repro.guard.bench import check_directory, compare_manifests
from repro.obs import RunManifest


def _metrics(cycles=1000, instructions=500):
    return {
        "sim.cycles": {"type": "counter", "value": cycles},
        "sim.instructions": {"type": "counter", "value": instructions},
        "grid.tasks": {"type": "counter", "value": 88},
        "tasks.completed": {"type": "counter", "value": 88},
        "task.seconds": {"type": "histogram", "count": 88,
                         "sum": 1.0, "min": 0.0, "max": 0.1,
                         "mean": 0.01},
        "queue.depth": {"type": "gauge", "value": 0, "peak": 3,
                        "samples": 9},
    }


def _write(path, label, *, fingerprint="abc123", metrics=None,
           elapsed=10.0, core="reference"):
    manifest = RunManifest(
        command=f"bench:{label}",
        fingerprint=fingerprint,
        settings={"core": core, "scale": 5.0},
    )
    manifest.finalize(metrics=_metrics() if metrics is None
                      else metrics)
    manifest.elapsed_seconds = elapsed
    return manifest.write(path)


@pytest.fixture
def dirs(tmp_path):
    baseline = tmp_path / "baselines"
    current = tmp_path / "fresh"
    baseline.mkdir()
    current.mkdir()
    return baseline, current


class TestCompare:
    def test_identical_manifests_pass(self, dirs):
        baseline, current = dirs
        _write(baseline / "BENCH_table9.json", "table9")
        _write(current / "BENCH_table9.json", "table9",
               core="batched")
        report = check_directory(baseline, current)
        assert report.status == 0
        assert not report.failures
        assert "PASS" in report.describe()

    def test_sim_counter_drift_fails_exact(self, dirs):
        baseline, current = dirs
        _write(baseline / "BENCH_table9.json", "table9")
        _write(current / "BENCH_table9.json", "table9",
               metrics=_metrics(cycles=1001))
        report = check_directory(baseline, current)
        assert report.status == 1
        bad = [c for c in report.failures if c.name == "sim.cycles"]
        assert bad and bad[0].verdict == "diverged"
        assert "DIVERGED" in report.describe()

    def test_wall_time_regression_beyond_tolerance(self, dirs):
        baseline, current = dirs
        _write(baseline / "BENCH_table9.json", "table9", elapsed=10.0)
        _write(current / "BENCH_table9.json", "table9", elapsed=16.0)
        report = check_directory(baseline, current, tolerance=0.5)
        assert report.status == 1
        assert report.failures[0].name == "elapsed_seconds"
        assert report.failures[0].verdict == "regressed"

    def test_wall_time_within_tolerance_passes(self, dirs):
        baseline, current = dirs
        _write(baseline / "BENCH_table9.json", "table9", elapsed=10.0)
        _write(current / "BENCH_table9.json", "table9", elapsed=14.9)
        assert check_directory(baseline, current,
                               tolerance=0.5).status == 0

    def test_faster_run_is_never_a_regression(self, dirs):
        baseline, current = dirs
        _write(baseline / "BENCH_table9.json", "table9", elapsed=100.0)
        _write(current / "BENCH_table9.json", "table9", elapsed=1.0)
        assert check_directory(baseline, current).status == 0


class TestIncomparable:
    def test_fingerprint_mismatch(self, dirs):
        baseline, current = dirs
        _write(baseline / "BENCH_table9.json", "table9",
               fingerprint="aaa")
        _write(current / "BENCH_table9.json", "table9",
               fingerprint="bbb")
        report = check_directory(baseline, current)
        assert report.status == 2
        assert "different experiments" in report.incomparable["table9"]

    def test_simulator_version_drift(self, dirs):
        baseline, current = dirs
        path = _write(baseline / "BENCH_table9.json", "table9")
        _write(current / "BENCH_table9.json", "table9")
        # Rewrite the baseline as if measured under an older simulator.
        doc = json.loads(path.read_text())
        base = RunManifest(command="bench:table9",
                           fingerprint="abc123")
        base.finalize(metrics=_metrics())
        base.simulator_version = "0"
        base.write(path)
        report = check_directory(baseline, current)
        assert report.status == 2
        assert "regenerate" in report.incomparable["table9"]
        assert doc["integrity"]["sim"] != "0"

    def test_missing_current_manifest(self, dirs):
        baseline, current = dirs
        _write(baseline / "BENCH_table9.json", "table9")
        report = check_directory(baseline, current)
        assert report.status == 2
        assert "no fresh" in report.incomparable["table9"]

    def test_tampered_current_manifest(self, dirs):
        baseline, current = dirs
        _write(baseline / "BENCH_table9.json", "table9")
        path = _write(current / "BENCH_table9.json", "table9")
        doc = json.loads(path.read_text())
        doc["outcome"]["metrics"]["sim.cycles"]["value"] = 1
        path.write_text(json.dumps(doc))
        report = check_directory(baseline, current)
        assert report.status == 2
        assert "current unusable" in report.incomparable["table9"]

    def test_empty_baseline_directory(self, dirs):
        baseline, current = dirs
        report = check_directory(baseline, current)
        assert report.status == 2

    def test_labels_subset_missing_baseline(self, dirs):
        baseline, current = dirs
        _write(baseline / "BENCH_table9.json", "table9")
        _write(current / "BENCH_table9.json", "table9")
        report = check_directory(baseline, current,
                                 labels=["table9", "table12"])
        assert report.status == 2
        assert "no committed baseline" in report.incomparable["table12"]


class TestDirectComparison:
    def test_compare_manifests_returns_checks(self, dirs):
        from repro.obs.manifest import load_manifest

        baseline, current = dirs
        a = load_manifest(_write(baseline / "BENCH_x.json", "x"))
        b = load_manifest(_write(current / "BENCH_x.json", "x"))
        checks = compare_manifests(a, b, label="x")
        names = {c.name for c in checks}
        assert "sim.cycles" in names
        assert "elapsed_seconds" in names
        # non-deterministic instruments are not compared
        assert "task.seconds" not in names
        assert "queue.depth" not in names


class TestCLI:
    def test_bench_check_cli(self, dirs, capsys):
        from repro.cli import main

        baseline, current = dirs
        _write(baseline / "BENCH_table9.json", "table9")
        _write(current / "BENCH_table9.json", "table9")
        assert main(["bench", "check", str(current),
                     "--baseline-dir", str(baseline)]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_bench_check_cli_regression(self, dirs, capsys):
        from repro.cli import main

        baseline, current = dirs
        _write(baseline / "BENCH_table9.json", "table9", elapsed=1.0)
        _write(current / "BENCH_table9.json", "table9", elapsed=100.0)
        assert main(["bench", "check", str(current),
                     "--baseline-dir", str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out
