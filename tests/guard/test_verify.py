"""Tests for ``repro verify`` (repro.guard.verify) and the
``--run-dir`` screen convenience that feeds it."""

import json
import shutil

import pytest

from repro.cli import main
from repro.cpu import SIMULATOR_VERSION
from repro.guard import SealCorrupt, check as guard_check
from repro.guard.verify import (
    RESULTS_KIND,
    RESULTS_SCHEMA,
    load_results,
    verify_run,
)

BENCH, LENGTH = "gzip", 600


@pytest.fixture(scope="module")
def run_dir(tmp_path_factory):
    """One finished, verifiable screen run (88 x 1 cells)."""
    directory = tmp_path_factory.mktemp("runs") / "screen"
    status = main(["screen", "-b", BENCH, "-n", str(LENGTH),
                   "--run-dir", str(directory)])
    assert status == 0
    return directory


@pytest.fixture()
def copy(run_dir, tmp_path):
    """A private mutable copy of the finished run."""
    target = tmp_path / "run"
    shutil.copytree(run_dir, target)
    return target


class TestRunDirLayout:
    def test_all_artifacts_written(self, run_dir):
        for name in ("manifest.json", "journal.jsonl", "metrics.jsonl",
                     "results.json", "cache"):
            assert (run_dir / name).exists(), name

    def test_results_document_is_sealed(self, run_dir):
        payload = guard_check(
            (run_dir / "results.json").read_bytes(),
            kind=RESULTS_KIND, schema=RESULTS_SCHEMA,
            simulator_version=SIMULATOR_VERSION,
        )
        doc = json.loads(payload)
        assert doc["design"]["n_runs"] == 88
        assert set(doc["responses"]) == {BENCH}
        assert doc["ranking"]["factors"]
        assert load_results(run_dir / "results.json") == doc

    def test_manifest_records_workload(self, run_dir):
        from repro.obs import load_manifest

        doc = load_manifest(run_dir / "manifest.json")
        assert doc["run"]["workload"] == {
            "benchmarks": BENCH, "length": LENGTH,
        }


class TestCleanVerify:
    def test_status_zero_all_checks_pass(self, run_dir):
        report = verify_run(run_dir)
        assert [c.name for c in report.checks if c.ok is not True] == []
        assert report.status == 0

    def test_cli_exit_zero(self, run_dir, capsys):
        assert main(["verify", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "VERIFIED: all artifacts agree" in out
        assert "recompute:gzip" in out

    def test_rerun_with_run_dir_resumes_and_stays_clean(self, copy,
                                                        capsys):
        # --run-dir implies --resume on its own journal: the rerun
        # costs zero simulations and rewrites identical artifacts.
        assert main(["screen", "-b", BENCH, "-n", str(LENGTH),
                     "--run-dir", str(copy)]) == 0
        assert verify_run(copy).status == 0


class TestViolations:
    def test_corrupt_journal_line_names_the_file(self, copy, capsys):
        journal = copy / "journal.jsonl"
        lines = journal.read_bytes().splitlines(keepends=True)
        lines[2] = lines[2].replace(b'"sha": "', b'"sha": "f')
        journal.write_bytes(b"".join(lines))
        assert main(["verify", str(copy)]) == 1
        out = capsys.readouterr().out
        assert "journal.jsonl" in out and "checksum" in out

    def test_corrupt_cache_entry_names_the_directory(self, copy,
                                                     capsys):
        entry = sorted((copy / "cache").glob("*.pkl"))[0]
        blob = bytearray(entry.read_bytes())
        blob[-3] ^= 0xFF
        entry.write_bytes(bytes(blob))
        assert main(["verify", str(copy)]) == 1
        out = capsys.readouterr().out
        assert "cache" in out and "quarantined" in out

    def test_both_corruptions_both_named(self, copy, capsys):
        journal = copy / "journal.jsonl"
        lines = journal.read_bytes().splitlines(keepends=True)
        lines[0] = lines[0].replace(b'"sha": "', b'"sha": "f')
        journal.write_bytes(b"".join(lines))
        entry = sorted((copy / "cache").glob("*.pkl"))[1]
        entry.write_bytes(entry.read_bytes()[:-10])
        assert main(["verify", str(copy)]) == 1
        out = capsys.readouterr().out
        assert "journal.jsonl" in out
        assert str(copy / "cache") in out

    def test_tampered_results_seal(self, copy):
        results = copy / "results.json"
        blob = bytearray(results.read_bytes())
        blob[-2] ^= 0xFF
        results.write_bytes(bytes(blob))
        report = verify_run(copy)
        assert report.status == 1
        failing = {c.name for c in report.violations}
        assert failing == {"results"}

    def test_doctored_results_caught_by_recompute(self, copy):
        # Re-seal the document honestly but with one response value
        # altered: only the recomputation can catch this.
        from repro.guard import seal as make_seal

        doc = load_results(copy / "results.json")
        doc["responses"][BENCH][17] += 1.0
        (copy / "results.json").write_bytes(make_seal(
            json.dumps(doc).encode(), kind=RESULTS_KIND,
            schema=RESULTS_SCHEMA, simulator_version=SIMULATOR_VERSION,
        ))
        report = verify_run(copy)
        assert report.status == 1
        failing = {c.name for c in report.violations}
        assert f"recompute:{BENCH}" in failing

    def test_doctored_ranking_caught(self, copy):
        from repro.guard import seal as make_seal

        doc = load_results(copy / "results.json")
        doc["ranking"]["sums"][0] += 2
        (copy / "results.json").write_bytes(make_seal(
            json.dumps(doc).encode(), kind=RESULTS_KIND,
            schema=RESULTS_SCHEMA, simulator_version=SIMULATOR_VERSION,
        ))
        report = verify_run(copy)
        assert report.status == 1
        assert "rank-sums" in {c.name for c in report.violations}

    def test_edited_manifest_detected(self, copy):
        manifest = copy / "manifest.json"
        doc = json.loads(manifest.read_text())
        doc["run"]["workload"]["length"] = 99999
        manifest.write_text(json.dumps(doc))
        report = verify_run(copy)
        assert report.status == 1
        assert report.checks[0].name == "manifest"
        assert report.checks[0].ok is False


class TestEventLogCheck:
    """Step 4c: the live event log is audited alongside the journal."""

    def test_clean_run_reports_lanes_intact(self, run_dir, capsys):
        assert (run_dir / "stream" / "main.events.jsonl").exists()
        report = verify_run(run_dir)
        (check,) = [c for c in report.checks if c.name == "event-log"]
        assert check.ok is True
        assert "records intact" in check.detail
        assert main(["verify", str(run_dir)]) == 0
        assert "event-log" in capsys.readouterr().out

    def test_torn_tail_is_tolerated(self, copy):
        lane = copy / "stream" / "main.events.jsonl"
        with open(lane, "ab") as handle:
            handle.write(b'{"v": 1, "lane": "main", "seq"')  # no \n
        report = verify_run(copy)
        (check,) = [c for c in report.checks if c.name == "event-log"]
        assert check.ok is True
        assert "torn tail tolerated on main" in check.detail
        assert report.status == 0

    def test_midfile_damage_is_a_violation(self, copy, capsys):
        lane = copy / "stream" / "main.events.jsonl"
        lines = lane.read_bytes().splitlines(keepends=True)
        lines[1] = lines[1].replace(b'"sha":"', b'"sha":"f')
        lane.write_bytes(b"".join(lines))
        assert main(["verify", str(copy)]) == 1
        out = capsys.readouterr().out
        assert "main.events.jsonl line 2: checksum" in out

    def test_event_log_damage_joins_other_findings(self, copy):
        lane = copy / "stream" / "main.events.jsonl"
        lines = lane.read_bytes().splitlines(keepends=True)
        lines.insert(1, b"garbage\n")
        lane.write_bytes(b"".join(lines))
        journal = copy / "journal.jsonl"
        jlines = journal.read_bytes().splitlines(keepends=True)
        jlines[2] = jlines[2].replace(b'"sha": "', b'"sha": "f')
        journal.write_bytes(b"".join(jlines))
        report = verify_run(copy)
        assert report.status == 1
        failing = {c.name for c in report.violations}
        assert {"event-log", "journal"} <= failing


class TestInconclusive:
    def test_empty_directory(self, tmp_path):
        report = verify_run(tmp_path)
        assert report.status == 2
        assert report.inconclusive

    def test_missing_results_document(self, copy):
        (copy / "results.json").unlink()
        report = verify_run(copy)
        assert report.status == 2
        names = {c.name for c in report.inconclusive}
        assert "results" in names

    def test_missing_journal(self, copy):
        (copy / "journal.jsonl").unlink()
        report = verify_run(copy)
        assert report.status == 2

    def test_violation_outranks_missing_evidence(self, copy):
        (copy / "results.json").unlink()
        entry = sorted((copy / "cache").glob("*.pkl"))[0]
        entry.write_bytes(b"junk")
        report = verify_run(copy)
        assert report.status == 1


class TestResultsHelpers:
    def test_load_results_raises_on_wrong_kind(self, tmp_path):
        from repro.guard import seal as make_seal

        path = tmp_path / "results.json"
        path.write_bytes(make_seal(b"{}", kind="other", schema=1))
        with pytest.raises(SealCorrupt):
            load_results(path)


class TestSpoolChecks:
    """``verify_run`` over a distributed run directory (step 4b)."""

    def _spool(self, run_dir):
        from repro.dist.spool import Spool
        from repro.exec import Journal

        spool = Spool(run_dir / "spool", version=SIMULATOR_VERSION)
        spool.ensure()
        journal = Journal(run_dir / "journal.jsonl")
        key = next(iter(journal.keys()))
        return spool, key, journal.get(key)

    def test_absent_spool_adds_no_checks(self, copy):
        report = verify_run(copy)
        assert report.status == 0
        assert not any(c.name.startswith("spool")
                       for c in report.checks)

    def test_agreeing_spool_passes(self, copy):
        spool, key, stats = self._spool(copy)
        spool.write_result(key, index=0, attempt=0, worker="w1",
                           ok=True, stats=stats)
        report = verify_run(copy)
        assert report.status == 0
        by_name = {c.name: c for c in report.checks}
        assert by_name["spool"].ok is True
        assert "1 sealed worker results" in by_name["spool"].detail
        assert by_name["spool-drained"].ok is True

    def test_torn_spool_result_is_violation(self, copy):
        spool, key, stats = self._spool(copy)
        spool.write_result(key, index=0, attempt=0, worker="w1",
                           ok=True, stats=stats)
        path = spool.result_path(key)
        path.write_bytes(path.read_bytes()[:-5])
        report = verify_run(copy)
        assert report.status == 1
        assert any(c.name == "spool" and c.ok is False
                   for c in report.checks)

    def test_disagreeing_spool_result_is_violation(self, copy):
        import dataclasses

        spool, key, stats = self._spool(copy)
        doctored = dataclasses.replace(stats, cycles=stats.cycles + 1)
        spool.write_result(key, index=0, attempt=0, worker="w1",
                           ok=True, stats=doctored)
        report = verify_run(copy)
        assert report.status == 1
        bad = [c for c in report.checks
               if c.name == "spool-agreement" and c.ok is False]
        assert bad and "cycles" in bad[0].detail

    def test_error_results_are_not_violations(self, copy):
        spool, key, _stats = self._spool(copy)
        spool.write_result(key, index=0, attempt=0, worker="w1",
                           ok=False, error_type="InjectedFault",
                           message="scripted")
        report = verify_run(copy)
        assert report.status == 0

    def test_inflight_tickets_are_inconclusive(self, copy):
        spool, key, _stats = self._spool(copy)
        spool.publish_task(key, 0, 0, None)
        report = verify_run(copy)
        assert report.status == 2
        stuck = [c for c in report.checks if c.name == "spool-drained"]
        assert stuck[0].ok is None
