"""Tests for the packed trace representation (repro.workloads.trace)."""

import numpy as np
import pytest

from repro.cpu import BranchKind, Instruction, OpClass
from repro.workloads import Trace


def sample_instructions():
    return [
        Instruction(pc=0x1000, op=OpClass.IALU, src1=1, src2=2, dst=3,
                    redundancy_key=7),
        Instruction(pc=0x1004, op=OpClass.LOAD, src1=3, dst=4,
                    mem_addr=0x8000),
        Instruction(pc=0x1008, op=OpClass.STORE, src1=4, src2=3,
                    mem_addr=0x8008),
        Instruction(pc=0x100C, op=OpClass.BRANCH,
                    branch_kind=BranchKind.CONDITIONAL, taken=True,
                    target=0x1000),
    ]


class TestRoundTrip:
    def test_pack_unpack(self):
        instrs = sample_instructions()
        tr = Trace.from_instructions(instrs)
        assert len(tr) == 4
        for i, original in enumerate(instrs):
            assert tr.instruction(i) == original

    def test_iteration(self):
        instrs = sample_instructions()
        assert list(Trace.from_instructions(instrs)) == instrs

    def test_name(self):
        tr = Trace.from_instructions(sample_instructions(), name="x")
        assert tr.name == "x"


class TestValidation:
    def test_valid_trace_passes(self):
        Trace.from_instructions(sample_instructions()).validate()

    def test_length_mismatch_rejected(self):
        base = Trace.from_instructions(sample_instructions())
        with pytest.raises(ValueError):
            Trace(base.pc[:2], base.op, base.src1, base.src2, base.dst,
                  base.mem_addr, base.branch_kind, base.taken,
                  base.target, base.redundancy_key)

    def test_corrupt_memory_op_detected(self):
        tr = Trace.from_instructions(sample_instructions())
        tr.mem_addr[1] = -1
        with pytest.raises(ValueError):
            tr.validate()

    def test_branch_without_kind_detected(self):
        tr = Trace.from_instructions(sample_instructions())
        tr.branch_kind[3] = 0
        with pytest.raises(ValueError):
            tr.validate()

    def test_taken_branch_without_target_detected(self):
        tr = Trace.from_instructions(sample_instructions())
        tr.target[3] = -1
        with pytest.raises(ValueError):
            tr.validate()


class TestSummaries:
    def test_instruction_mix(self):
        tr = Trace.from_instructions(sample_instructions())
        mix = tr.instruction_mix()
        assert mix["IALU"] == pytest.approx(0.25)
        assert mix["LOAD"] == pytest.approx(0.25)
        assert mix["BRANCH"] == pytest.approx(0.25)

    def test_counts(self):
        tr = Trace.from_instructions(sample_instructions())
        assert tr.branch_count() == 1
        assert tr.memory_count() == 2

    def test_redundancy_counts(self):
        instrs = sample_instructions() * 3
        tr = Trace.from_instructions(instrs)
        assert tr.redundancy_counts() == {7: 3}
