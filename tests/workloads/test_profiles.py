"""Tests for the thirteen SPEC-like benchmark profiles."""

import numpy as np
import pytest

from repro.cpu import MachineConfig, OpClass, simulate
from repro.workloads import (
    BENCHMARK_NAMES,
    PAPER_INSTRUCTION_COUNTS_M,
    PROFILES,
    benchmark_suite,
    benchmark_trace,
    default_length,
    profile,
)


class TestSuiteDefinition:
    def test_thirteen_benchmarks(self):
        """Table 5 lists exactly these thirteen benchmarks."""
        assert BENCHMARK_NAMES == [
            "gzip", "vpr-Place", "vpr-Route", "gcc", "mesa", "art",
            "mcf", "equake", "ammp", "parser", "vortex", "bzip2",
            "twolf",
        ]

    def test_profiles_cover_all(self):
        assert set(PROFILES) == set(BENCHMARK_NAMES)

    def test_paper_instruction_counts(self):
        assert PAPER_INSTRUCTION_COUNTS_M["gcc"] == pytest.approx(4040.7)
        assert PAPER_INSTRUCTION_COUNTS_M["mcf"] == pytest.approx(601.2)

    def test_unique_seeds(self):
        seeds = [p.seed for p in PROFILES.values()]
        assert len(set(seeds)) == len(seeds)

    def test_lookup(self):
        assert profile("gzip").name == "gzip"
        with pytest.raises(KeyError):
            profile("povray")

    def test_default_length_proportional(self):
        """Trace lengths track Table 5's relative dynamic counts."""
        assert default_length("gcc") > default_length("mcf")
        ratio = default_length("gcc") / default_length("gzip")
        paper_ratio = (PAPER_INSTRUCTION_COUNTS_M["gcc"]
                       / PAPER_INSTRUCTION_COUNTS_M["gzip"])
        assert ratio == pytest.approx(paper_ratio, rel=0.05)


class TestCaching:
    def test_same_object_returned(self):
        a = benchmark_trace("gzip", 2000)
        b = benchmark_trace("gzip", 2000)
        assert a is b

    def test_suite_contains_all(self):
        suite = benchmark_suite(length=1000)
        assert set(suite) == set(BENCHMARK_NAMES)
        assert all(len(t) == 1000 for t in suite.values())

    def test_subset(self):
        suite = benchmark_suite(length=1000, names=["art", "mcf"])
        assert set(suite) == {"art", "mcf"}


class TestFingerprints:
    """Coarse behavioural distinctions the paper's Table 9 relies on."""

    def test_fp_benchmarks_contain_fp(self):
        for name in ("mesa", "art", "equake", "ammp"):
            mix = benchmark_trace(name, 4000).instruction_mix()
            fp = sum(mix.get(k, 0) for k in ("FALU", "FMULT", "FDIV",
                                             "FSQRT"))
            assert fp > 0.10, name

    def test_integer_benchmarks_nearly_fp_free(self):
        for name in ("gzip", "mcf", "bzip2", "parser"):
            mix = benchmark_trace(name, 4000).instruction_mix()
            fp = sum(mix.get(k, 0) for k in ("FALU", "FMULT", "FDIV",
                                             "FSQRT"))
            assert fp < 0.05, name

    def test_icache_stressors_have_big_code(self):
        """vpr-Place/mesa/twolf touch far more code than gzip/mcf."""
        def touched_code(name):
            tr = benchmark_trace(name, 8000)
            return len(np.unique(tr.pc // 64)) * 64

        small = max(touched_code(n) for n in ("gzip", "mcf", "art"))
        for name in ("vpr-Place", "mesa", "twolf"):
            assert touched_code(name) > 2 * small, name

    def test_memory_bound_benchmarks_touch_more_data(self):
        def touched_pages(name):
            tr = benchmark_trace(name, 8000)
            addrs = tr.mem_addr[tr.mem_addr >= 0]
            return len(np.unique(addrs // 4096))

        assert touched_pages("mcf") > 2 * touched_pages("gzip")
        assert touched_pages("art") > 2 * touched_pages("gzip")

    def test_mcf_pointer_heavy(self):
        from repro.workloads.synthetic import _POINTER_REG

        tr = benchmark_trace("mcf", 6000)
        loads = tr.op == int(OpClass.LOAD)
        pointer = (tr.src1 == _POINTER_REG) & loads
        fraction = pointer.sum() / max(1, loads.sum())
        assert fraction > 0.2

    def test_predictable_vs_branchy(self):
        """art/ammp mispredict far less than parser/twolf."""
        def mpred(name):
            tr = benchmark_trace(name, 8000)
            return simulate(MachineConfig(), tr,
                            warmup=True).misprediction_rate

        assert mpred("art") < 0.05
        assert mpred("ammp") < 0.05
        assert mpred("parser") > 0.10
        assert mpred("twolf") > 0.10

    def test_all_benchmarks_simulate_with_sane_ipc(self):
        for name in BENCHMARK_NAMES:
            stats = simulate(MachineConfig(),
                             benchmark_trace(name, 5000), warmup=True)
            assert 0.2 < stats.ipc < 4.0, name
            assert stats.instructions == 5000
