"""Tests for trace serialization (repro.workloads.io)."""

import io

import numpy as np
import pytest

from repro.cpu import MachineConfig, simulate
from repro.guard import check as guard_check
from repro.workloads import benchmark_trace, load_trace, save_trace
from repro.workloads.io import FORMAT_VERSION, TRACE_KIND, _FIELDS


@pytest.fixture
def trace():
    return benchmark_trace("gzip", 1500)


def _unseal(path):
    """The arrays of a sealed archive, for tests that tamper with
    them and re-write a plain (legacy-style) ``.npz``."""
    payload = guard_check(
        path.read_bytes(), kind=TRACE_KIND, schema=FORMAT_VERSION
    )
    with np.load(io.BytesIO(payload)) as archive:
        return dict(archive)


class TestRoundTrip:
    def test_arrays_identical(self, trace, tmp_path):
        path = tmp_path / "gzip.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        for field in _FIELDS:
            assert np.array_equal(getattr(loaded, field),
                                  getattr(trace, field)), field
        assert loaded.name == trace.name

    def test_simulation_equivalent(self, trace, tmp_path):
        path = tmp_path / "t.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        a = simulate(MachineConfig(), trace, warmup=True)
        b = simulate(MachineConfig(), loaded, warmup=True)
        assert a.cycles == b.cycles

    def test_compressed_smaller_than_raw(self, trace, tmp_path):
        path = tmp_path / "t.npz"
        save_trace(trace, path)
        raw = sum(getattr(trace, f).nbytes for f in _FIELDS)
        assert path.stat().st_size < raw


class TestValidation:
    def test_not_an_archive(self, tmp_path):
        path = tmp_path / "bogus.npz"
        np.savez(path, something=np.arange(3))
        with pytest.raises(ValueError, match="not a repro trace"):
            load_trace(path)

    def test_version_mismatch(self, trace, tmp_path):
        path = tmp_path / "t.npz"
        save_trace(trace, path)
        data = _unseal(path)
        data["__version__"] = np.int64(FORMAT_VERSION + 1)
        np.savez(path, **data)
        with pytest.raises(ValueError, match="format"):
            load_trace(path)

    def test_missing_field(self, trace, tmp_path):
        path = tmp_path / "t.npz"
        save_trace(trace, path)
        data = _unseal(path)
        del data["mem_addr"]
        np.savez(path, **data)
        with pytest.raises(ValueError, match="missing array"):
            load_trace(path)

    def test_corrupt_content_detected(self, trace, tmp_path):
        """A structurally invalid trace fails validation at load."""
        path = tmp_path / "t.npz"
        save_trace(trace, path)
        data = _unseal(path)
        mem = data["mem_addr"].copy()
        op = data["op"]
        from repro.cpu import OpClass

        loads = np.where(op == int(OpClass.LOAD))[0]
        mem[loads[0]] = -1
        data["mem_addr"] = mem
        np.savez(path, **data)
        with pytest.raises(ValueError):
            load_trace(path)


class TestNameRoundTrip:
    """The benchmark name must survive save/load byte-for-byte, for
    any dtype NumPy chooses to store it with."""

    @pytest.mark.parametrize("name", [
        "gzip",
        "vpr-Place",
        "bench#r3",
        "gzìp-φ2000",          # non-ASCII: accents, Greek
        "トレース",              # non-ASCII: multi-byte CJK
    ])
    def test_name_round_trips(self, trace, tmp_path, name):
        renamed = type(trace)(
            trace.pc, trace.op, trace.src1, trace.src2, trace.dst,
            trace.mem_addr, trace.branch_kind, trace.taken,
            trace.target, trace.redundancy_key, name=name,
        )
        path = tmp_path / "t.npz"
        save_trace(renamed, path)
        assert load_trace(path).name == name

    def test_unicode_dtype_archive_loads(self, trace, tmp_path):
        """An archive whose name was stored as a unicode scalar (as an
        external tool might write it) must load to the same string."""
        path = tmp_path / "t.npz"
        save_trace(trace, path)
        data = _unseal(path)
        data["__name__"] = np.str_("gzìp-unicode")
        np.savez(path, **data)
        assert load_trace(path).name == "gzìp-unicode"


class TestStrictMode:
    """``load_trace(strict=True)``: per-record invariants with the
    offending record named (satellite of the repro.guard work)."""

    def _mutated(self, trace, tmp_path, **changes):
        path = tmp_path / "t.npz"
        save_trace(trace, path)
        data = _unseal(path)
        for field, (index, value) in changes.items():
            column = data[field].copy()
            column[index] = value
            data[field] = column
        np.savez(path, **data)
        return path

    def test_clean_trace_passes(self, trace, tmp_path):
        path = tmp_path / "t.npz"
        save_trace(trace, path)
        loaded = load_trace(path, strict=True)
        assert loaded.fingerprint() == trace.fingerprint()

    def test_opcode_domain(self, trace, tmp_path):
        from repro.cpu import BranchKind
        from repro.guard import TraceCorrupt

        index = int(np.where(
            trace.branch_kind == int(BranchKind.NONE)
        )[0][5])
        path = self._mutated(trace, tmp_path, op=(index, 99))
        with pytest.raises(TraceCorrupt) as info:
            load_trace(path, strict=True)
        assert info.value.reason == "opcode-domain"
        assert info.value.index == index
        assert info.value.field == "op"
        # The offending record is named in the message.
        assert f"record {index}" in str(info.value)

    def test_branch_kind_domain(self, trace, tmp_path):
        from repro.cpu import OpClass
        from repro.guard import TraceCorrupt

        index = int(np.where(trace.op == int(OpClass.BRANCH))[0][0])
        path = self._mutated(trace, tmp_path,
                             branch_kind=(index, 77))
        with pytest.raises(TraceCorrupt) as info:
            load_trace(path, strict=True)
        assert info.value.reason == "branch-kind-domain"
        assert info.value.index == index

    def test_negative_pc(self, trace, tmp_path):
        from repro.guard import TraceCorrupt

        path = self._mutated(trace, tmp_path, pc=(0, -8))
        with pytest.raises(TraceCorrupt) as info:
            load_trace(path, strict=True)
        assert info.value.reason == "pc-domain"
        assert info.value.index == 0

    def test_pc_flow_break(self, trace, tmp_path):
        from repro.cpu import BranchKind, OpClass
        from repro.guard import TraceCorrupt

        # A record whose predecessor is a plain instruction: its PC
        # must be predecessor + 4.  Nudging it models a spliced or
        # reordered trace.
        plain = (trace.op != int(OpClass.BRANCH))[:-1]
        index = int(np.where(plain)[0][10]) + 1
        path = self._mutated(
            trace, tmp_path, pc=(index, int(trace.pc[index]) + 400)
        )
        with pytest.raises(TraceCorrupt) as info:
            load_trace(path, strict=True)
        assert info.value.reason == "pc-flow"
        assert info.value.index == index
        assert info.value.field == "pc"

    def test_default_load_skips_per_record_checks(self, trace,
                                                  tmp_path):
        """strict is opt-in: the default load only runs the cheap
        structural validation, so external archives keep loading."""
        path = self._mutated(trace, tmp_path, pc=(0, -8))
        assert load_trace(path) is not None
