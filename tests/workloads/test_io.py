"""Tests for trace serialization (repro.workloads.io)."""

import numpy as np
import pytest

from repro.cpu import MachineConfig, simulate
from repro.workloads import benchmark_trace, load_trace, save_trace
from repro.workloads.io import FORMAT_VERSION, _FIELDS


@pytest.fixture
def trace():
    return benchmark_trace("gzip", 1500)


class TestRoundTrip:
    def test_arrays_identical(self, trace, tmp_path):
        path = tmp_path / "gzip.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        for field in _FIELDS:
            assert np.array_equal(getattr(loaded, field),
                                  getattr(trace, field)), field
        assert loaded.name == trace.name

    def test_simulation_equivalent(self, trace, tmp_path):
        path = tmp_path / "t.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        a = simulate(MachineConfig(), trace, warmup=True)
        b = simulate(MachineConfig(), loaded, warmup=True)
        assert a.cycles == b.cycles

    def test_compressed_smaller_than_raw(self, trace, tmp_path):
        path = tmp_path / "t.npz"
        save_trace(trace, path)
        raw = sum(getattr(trace, f).nbytes for f in _FIELDS)
        assert path.stat().st_size < raw


class TestValidation:
    def test_not_an_archive(self, tmp_path):
        path = tmp_path / "bogus.npz"
        np.savez(path, something=np.arange(3))
        with pytest.raises(ValueError, match="not a repro trace"):
            load_trace(path)

    def test_version_mismatch(self, trace, tmp_path):
        path = tmp_path / "t.npz"
        save_trace(trace, path)
        with np.load(path) as archive:
            data = dict(archive)
        data["__version__"] = np.int64(FORMAT_VERSION + 1)
        np.savez(path, **data)
        with pytest.raises(ValueError, match="format"):
            load_trace(path)

    def test_missing_field(self, trace, tmp_path):
        path = tmp_path / "t.npz"
        save_trace(trace, path)
        with np.load(path) as archive:
            data = dict(archive)
        del data["mem_addr"]
        np.savez(path, **data)
        with pytest.raises(ValueError, match="missing array"):
            load_trace(path)

    def test_corrupt_content_detected(self, trace, tmp_path):
        """A structurally invalid trace fails validation at load."""
        path = tmp_path / "t.npz"
        save_trace(trace, path)
        with np.load(path) as archive:
            data = dict(archive)
        mem = data["mem_addr"].copy()
        op = data["op"]
        from repro.cpu import OpClass

        loads = np.where(op == int(OpClass.LOAD))[0]
        mem[loads[0]] = -1
        data["mem_addr"] = mem
        np.savez(path, **data)
        with pytest.raises(ValueError):
            load_trace(path)


class TestNameRoundTrip:
    """The benchmark name must survive save/load byte-for-byte, for
    any dtype NumPy chooses to store it with."""

    @pytest.mark.parametrize("name", [
        "gzip",
        "vpr-Place",
        "bench#r3",
        "gzìp-φ2000",          # non-ASCII: accents, Greek
        "トレース",              # non-ASCII: multi-byte CJK
    ])
    def test_name_round_trips(self, trace, tmp_path, name):
        renamed = type(trace)(
            trace.pc, trace.op, trace.src1, trace.src2, trace.dst,
            trace.mem_addr, trace.branch_kind, trace.taken,
            trace.target, trace.redundancy_key, name=name,
        )
        path = tmp_path / "t.npz"
        save_trace(renamed, path)
        assert load_trace(path).name == name

    def test_unicode_dtype_archive_loads(self, trace, tmp_path):
        """An archive whose name was stored as a unicode scalar (as an
        external tool might write it) must load to the same string."""
        path = tmp_path / "t.npz"
        save_trace(trace, path)
        with np.load(path) as archive:
            data = dict(archive)
        data["__name__"] = np.str_("gzìp-unicode")
        np.savez(path, **data)
        assert load_trace(path).name == "gzìp-unicode"
