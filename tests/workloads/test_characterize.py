"""Tests for workload characterization (repro.workloads.characterize)."""

import pytest

from repro.cpu import BranchKind, Instruction, OpClass
from repro.workloads import (
    benchmark_trace,
    branch_profile,
    characterization_report,
    characterize,
    footprint_profile,
    miss_rate_curve,
)
from repro.workloads.trace import Trace


def tiny_trace():
    return Trace.from_instructions([
        Instruction(pc=0x1000, op=OpClass.IALU, dst=1),
        Instruction(pc=0x1004, op=OpClass.LOAD, dst=2, mem_addr=0x8000),
        Instruction(pc=0x1008, op=OpClass.STORE, src1=2,
                    mem_addr=0x9000),
        Instruction(pc=0x100C, op=OpClass.BRANCH,
                    branch_kind=BranchKind.CALL, taken=True,
                    target=0x2000),
        Instruction(pc=0x2000, op=OpClass.BRANCH,
                    branch_kind=BranchKind.RETURN, taken=True,
                    target=0x1010),
        Instruction(pc=0x1010, op=OpClass.BRANCH,
                    branch_kind=BranchKind.CONDITIONAL, taken=False),
    ], name="tiny")


class TestBranchProfile:
    def test_counts(self):
        b = branch_profile(tiny_trace())
        assert b.branches == 3
        assert b.taken_fraction == pytest.approx(2 / 3)
        assert b.conditional_fraction == pytest.approx(1 / 3)
        assert b.call_fraction == pytest.approx(1 / 3)
        assert b.return_fraction == pytest.approx(1 / 3)
        assert b.unique_sites == 3

    def test_no_branches(self):
        tr = Trace.from_instructions(
            [Instruction(pc=0, op=OpClass.IALU)]
        )
        b = branch_profile(tr)
        assert b.branches == 0
        assert b.dynamic_per_static == 0.0


class TestFootprint:
    def test_counts(self):
        f = footprint_profile(tiny_trace())
        assert f.memory_references == 2
        assert f.data_pages == 2       # 0x8000 and 0x9000
        assert f.data_bytes == 64      # two 32-byte blocks
        assert f.code_bytes >= 64      # two code regions

    def test_reflects_real_benchmark_contrast(self):
        big_code = footprint_profile(benchmark_trace("mesa", 5000))
        small_code = footprint_profile(benchmark_trace("mcf", 5000))
        assert big_code.code_bytes > 3 * small_code.code_bytes


class TestMissRateCurve:
    def test_monotone_non_increasing(self):
        """Bigger caches never miss more (same assoc scaling)."""
        curve = miss_rate_curve(benchmark_trace("gzip", 5000))
        rates = [rate for _, rate in curve]
        assert all(a >= b - 1e-12 for a, b in zip(rates, rates[1:]))

    def test_code_stream(self):
        curve = miss_rate_curve(benchmark_trace("twolf", 5000),
                                stream="code")
        assert curve[0][1] > curve[-1][1]   # 4 KB worse than 128 KB

    def test_unknown_stream(self):
        with pytest.raises(ValueError):
            miss_rate_curve(tiny_trace(), stream="rumors")

    def test_mcf_flatter_than_gzip(self):
        """The memory-bound benchmark keeps missing at 128 KB."""
        gzip_curve = dict(miss_rate_curve(benchmark_trace("gzip", 6000)))
        mcf_curve = dict(miss_rate_curve(benchmark_trace("mcf", 6000)))
        assert mcf_curve[131072] > gzip_curve[131072]


class TestBundle:
    def test_characterize_keys(self):
        c = characterize(tiny_trace())
        assert set(c) == {"name", "instructions", "mix", "branches",
                          "footprint", "l1d_curve", "l1i_curve"}

    def test_report_renders(self):
        text = characterization_report(benchmark_trace("gzip", 3000))
        assert "gzip" in text
        assert "L1D miss-rate curve" in text
        assert "footprint" in text
