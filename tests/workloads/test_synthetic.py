"""Tests for the statistical workload generator (repro.workloads.synthetic)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu import BranchKind, OpClass
from repro.workloads import SyntheticProgram, WorkloadProfile, generate_trace


def small_profile(**kw):
    defaults = dict(name="unit", seed=42, n_blocks=32, n_functions=4)
    defaults.update(kw)
    return WorkloadProfile(**defaults)


class TestProfileValidation:
    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            small_profile(loop_fraction=1.5)
        with pytest.raises(ValueError):
            small_profile(stack_fraction=-0.1)

    def test_stack_plus_hot_bounded(self):
        with pytest.raises(ValueError):
            small_profile(stack_fraction=0.7, hot_fraction=0.5)

    def test_block_length_minimum(self):
        with pytest.raises(ValueError):
            small_profile(block_len_mean=1.0)

    def test_negative_weight(self):
        with pytest.raises(ValueError):
            small_profile(ialu_weight=-0.5)

    def test_lookback_bounds(self):
        with pytest.raises(ValueError):
            small_profile(dep_lookback_p=0.0)


class TestDeterminism:
    def test_same_seed_same_trace(self):
        p = small_profile()
        a = generate_trace(p, 2000)
        b = generate_trace(p, 2000)
        assert np.array_equal(a.pc, b.pc)
        assert np.array_equal(a.mem_addr, b.mem_addr)
        assert np.array_equal(a.taken, b.taken)

    def test_different_seed_differs(self):
        a = generate_trace(small_profile(seed=1), 2000)
        b = generate_trace(small_profile(seed=2), 2000)
        assert not np.array_equal(a.pc, b.pc)

    def test_seed_override(self):
        p = small_profile()
        a = generate_trace(p, 1000, seed=99)
        b = generate_trace(p, 1000, seed=99)
        c = generate_trace(p, 1000, seed=100)
        assert np.array_equal(a.mem_addr, b.mem_addr)
        assert not np.array_equal(a.mem_addr, c.mem_addr)


class TestTraceStructure:
    def test_exact_length(self):
        for n in (1, 17, 1000):
            assert len(generate_trace(small_profile(), n)) == n

    def test_trace_validates(self):
        generate_trace(small_profile(), 3000).validate()

    def test_mix_tracks_profile(self):
        p = small_profile(
            ialu_weight=0.2, falu_weight=0.4, load_weight=0.2,
            store_weight=0.1, imult_weight=0, idiv_weight=0,
        )
        mix = generate_trace(p, 8000).instruction_mix()
        assert mix["FALU"] > mix["IALU"]
        assert mix.get("LOAD", 0) > mix.get("STORE", 0)

    def test_branch_frequency_tracks_block_length(self):
        short = generate_trace(small_profile(block_len_mean=4.0), 6000)
        long = generate_trace(small_profile(block_len_mean=12.0), 6000)
        assert short.branch_count() > long.branch_count()

    def test_memory_ops_have_addresses(self):
        tr = generate_trace(small_profile(), 4000)
        mem = np.isin(tr.op, (int(OpClass.LOAD), int(OpClass.STORE)))
        assert (tr.mem_addr[mem] >= 0).all()

    def test_calls_and_returns_nest(self):
        """Returns always target the instruction after their call."""
        p = small_profile(call_fraction=0.2, n_functions=6,
                          max_call_depth=4)
        tr = generate_trace(p, 8000)
        stack = []
        ok = True
        for i in range(len(tr)):
            kind = int(tr.branch_kind[i])
            if kind == int(BranchKind.CALL) and tr.taken[i]:
                stack.append(int(tr.pc[i]) + 4)
            elif kind == int(BranchKind.RETURN) and stack:
                ok &= int(tr.target[i]) == stack.pop()
        assert ok

    def test_call_depth_bounded(self):
        p = small_profile(call_fraction=0.3, nested_call_fraction=0.5,
                          max_call_depth=3)
        tr = generate_trace(p, 8000)
        depth = max_depth = 0
        for i in range(len(tr)):
            kind = int(tr.branch_kind[i])
            if kind == int(BranchKind.CALL) and tr.taken[i]:
                depth += 1
                max_depth = max(max_depth, depth)
            elif kind == int(BranchKind.RETURN) and depth:
                depth -= 1
        assert max_depth <= 3


class TestDataModel:
    def test_footprint_respected(self):
        p = small_profile(data_footprint=1 << 16)
        tr = generate_trace(p, 8000)
        from repro.workloads.synthetic import _DATA_BASE

        cold = tr.mem_addr[(tr.mem_addr >= _DATA_BASE)
                           & (tr.mem_addr < _DATA_BASE + (1 << 28))]
        if len(cold):
            assert (cold < _DATA_BASE + (1 << 16)).all()

    def test_stack_region_small(self):
        from repro.workloads.synthetic import _STACK_BASE

        p = small_profile(stack_fraction=0.9, hot_fraction=0.0,
                          stack_bytes=2048)
        tr = generate_trace(p, 6000)
        stack = tr.mem_addr[tr.mem_addr >= _STACK_BASE]
        assert len(stack) > 0
        assert (stack < _STACK_BASE + 2048).all()

    def test_larger_footprint_touches_more_pages(self):
        small = generate_trace(
            small_profile(data_footprint=1 << 18, n_arenas=8,
                          stack_fraction=0.2, hot_fraction=0.1,
                          reuse_exponent=1.0), 20000)
        large = generate_trace(
            small_profile(data_footprint=1 << 24, n_arenas=8,
                          stack_fraction=0.2, hot_fraction=0.1,
                          reuse_exponent=1.0), 20000)

        def pages(tr):
            addrs = tr.mem_addr[tr.mem_addr >= 0]
            return len(np.unique(addrs // 4096))

        assert pages(large) > pages(small)

    def test_pointer_loads_self_dependent(self):
        from repro.workloads.synthetic import _POINTER_REG

        p = small_profile(pointer_fraction=0.5, streaming_fraction=0.0)
        tr = generate_trace(p, 6000)
        loads = tr.op == int(OpClass.LOAD)
        pointer_loads = loads & (tr.src1 == _POINTER_REG)
        assert pointer_loads.sum() > 0
        assert (tr.dst[pointer_loads] == _POINTER_REG).all()


class TestStaticStructure:
    def test_program_reusable_for_multiple_lengths(self):
        program = SyntheticProgram(small_profile())
        a = program.emit(1000)
        b = program.emit(2000)
        assert len(a) == 1000 and len(b) == 2000

    def test_code_footprint_scales_with_blocks(self):
        small = SyntheticProgram(small_profile(n_blocks=16))
        large = SyntheticProgram(small_profile(n_blocks=256))
        assert large.code_bytes > small.code_bytes

    def test_redundancy_keys_bounded(self):
        p = small_profile(redundancy_fraction=0.5, n_redundant_keys=100)
        tr = generate_trace(p, 5000)
        keys = tr.redundancy_key[tr.redundancy_key >= 0]
        assert len(keys) > 0
        assert (keys < 100).all()


@given(st.integers(1, 3000), st.integers(0, 2 ** 16))
@settings(max_examples=15, deadline=None)
def test_generator_always_produces_valid_traces(length, seed):
    """Any (length, seed) yields a structurally valid trace."""
    p = WorkloadProfile(name="prop", seed=seed or 1, n_blocks=24,
                        n_functions=3)
    tr = generate_trace(p, length)
    assert len(tr) == length
    tr.validate()
