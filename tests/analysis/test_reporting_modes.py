"""The SARIF reporter and the ``--diff`` incremental mode.

SARIF shape is pinned structurally: the document must parse, carry
the 2.1.0 version tag, list the full rule catalogue (including the
REP000 parse-error pseudo-rule) on the tool driver, and anchor each
result with rule ID, level, location, and the baseline fingerprint
as a partial fingerprint — the fields code hosts actually consume.

``--diff`` is pinned behaviourally in a scratch git repository: only
files changed relative to the ref are linted, paths outside the
requested roots stay excluded, deletions lint nothing, and an
unresolvable ref is a usage error (exit 2) — an incremental gate
that silently linted nothing would pass every PR.
"""

import json
import subprocess

import pytest

from repro.analysis import Analyzer, default_checkers
from repro.analysis.checkers import ALL_CHECKERS
from repro.analysis.cli import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_USAGE,
    main,
)
from repro.analysis.config import AnalysisConfig
from repro.analysis.core import PARSE_ERROR_RULE
from repro.analysis.reporters import render_sarif

DIRTY = 'import os\nlevel = os.getenv("X")\n'
CLEAN = "def f(x):\n    return x\n"


def _sarif(tmp_path, sources):
    for name, text in sources.items():
        (tmp_path / name).write_text(text)
    analyzer = Analyzer(default_checkers(), AnalysisConfig())
    result = analyzer.analyze_paths([tmp_path], root=tmp_path)
    return json.loads(render_sarif(result))


class TestSarifShape:
    def test_document_skeleton(self, tmp_path):
        doc = _sarif(tmp_path, {"a.py": DIRTY})
        assert doc["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in doc["$schema"]
        (run,) = doc["runs"]
        assert run["tool"]["driver"]["name"] == "repro-lint"

    def test_rule_catalogue_is_complete_and_sorted(self, tmp_path):
        doc = _sarif(tmp_path, {"a.py": CLEAN})
        rules = doc["runs"][0]["tool"]["driver"]["rules"]
        ids = [r["id"] for r in rules]
        assert ids == sorted(ids)
        expected = {cls.rule for cls in ALL_CHECKERS}
        expected.add(PARSE_ERROR_RULE)
        assert set(ids) == expected
        for rule in rules:
            assert rule["shortDescription"]["text"]
            assert rule["defaultConfiguration"]["level"] in (
                "error", "warning",
            )

    def test_results_carry_location_and_fingerprint(self, tmp_path):
        doc = _sarif(tmp_path, {"a.py": DIRTY})
        (res,) = doc["runs"][0]["results"]
        assert res["ruleId"] == "REP006"
        assert res["level"] in ("error", "warning")
        assert res["message"]["text"]
        loc = res["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"] == "a.py"
        assert loc["region"]["startLine"] == 2
        assert loc["region"]["startColumn"] >= 1
        fp = res["partialFingerprints"]["reproFingerprint/v1"]
        assert len(fp) == 16

    def test_clean_run_has_empty_results(self, tmp_path):
        doc = _sarif(tmp_path, {"a.py": CLEAN})
        assert doc["runs"][0]["results"] == []

    def test_cli_format_sarif_round_trips(self, tmp_path, capsys):
        target = tmp_path / "a.py"
        target.write_text(DIRTY)
        status = main([str(tmp_path), "--format", "sarif"])
        doc = json.loads(capsys.readouterr().out)
        assert status == EXIT_FINDINGS
        assert doc["version"] == "2.1.0"
        assert len(doc["runs"][0]["results"]) == 1


def _git(cwd, *argv):
    subprocess.run(
        ["git", "-c", "user.email=ci@example.org",
         "-c", "user.name=ci", *argv],
        cwd=cwd, check=True, capture_output=True,
    )


@pytest.fixture
def repo(tmp_path, monkeypatch):
    """A scratch git repo with one committed clean tree."""
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "a.py").write_text(CLEAN)
    (tmp_path / "pkg" / "b.py").write_text(CLEAN)
    (tmp_path / "other").mkdir()
    (tmp_path / "other" / "c.py").write_text(CLEAN)
    _git(tmp_path, "init", "-q")
    _git(tmp_path, "add", ".")
    _git(tmp_path, "commit", "-qm", "seed")
    monkeypatch.chdir(tmp_path)
    return tmp_path


class TestDiffMode:
    def test_only_changed_files_are_linted(self, repo, capsys):
        (repo / "pkg" / "a.py").write_text(DIRTY)
        status = main(["pkg", "--diff", "HEAD"])
        out = capsys.readouterr().out
        assert status == EXIT_FINDINGS
        assert "checked 1 file" in out
        assert "a.py" in out

    def test_unchanged_tree_lints_nothing(self, repo, capsys):
        status = main(["pkg", "--diff", "HEAD"])
        assert status == EXIT_CLEAN
        assert "checked 0 files" in capsys.readouterr().out

    def test_changes_outside_requested_paths_excluded(self, repo,
                                                      capsys):
        (repo / "other" / "c.py").write_text(DIRTY)
        status = main(["pkg", "--diff", "HEAD"])
        assert status == EXIT_CLEAN
        assert "checked 0 files" in capsys.readouterr().out

    def test_deleted_files_lint_nothing(self, repo, capsys):
        (repo / "pkg" / "b.py").unlink()
        status = main(["pkg", "--diff", "HEAD"])
        assert status == EXIT_CLEAN
        assert "checked 0 files" in capsys.readouterr().out

    def test_bad_ref_is_a_usage_error(self, repo, capsys):
        status = main(["pkg", "--diff", "no-such-ref"])
        assert status == EXIT_USAGE
        assert "git failed" in capsys.readouterr().err
