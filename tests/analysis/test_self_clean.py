"""The analyzer's own gate: ``src/repro`` is clean, and stays honest.

Three properties pin the CI contract down:

* the shipped tree reports **zero** unsuppressed findings (what the
  CI ``lint`` job asserts on every push);
* every inline suppression in the tree carries a ``-- reason`` tail,
  so a ``noqa`` can never silently launder a new hazard;
* the gate actually bites: re-introducing a representative hazard
  (an unseeded ``random.Random()`` in the cache-replacement model)
  is detected.
"""

import re
from pathlib import Path

import repro
from repro.analysis import Analyzer, default_checkers, load_config
from repro.analysis.core import _NOQA_RE

SRC = Path(repro.__file__).resolve().parent


def _analyzer():
    return Analyzer(default_checkers(), load_config(start=SRC))


class TestSelfCleanliness:
    def test_src_repro_reports_nothing(self):
        result = _analyzer().analyze_paths([SRC], root=SRC.parent)
        assert result.clean, "\n".join(
            f.render() for f in result.findings
        )

    def test_suppressions_exist_and_carry_reasons(self):
        """Every active noqa in the tree names its rules and reason."""
        result = _analyzer().analyze_paths([SRC], root=SRC.parent)
        # The tree ships with known, documented suppressions (the
        # fault injector's env hook, worker-process flags, ...).
        assert len(result.suppressions) >= 5
        for finding in result.suppressions:
            where = f"{finding.path}:{finding.line}"
            match = _NOQA_RE.search(finding.source)
            assert match is not None, where
            assert match.group("rules"), \
                f"{where}: noqa must list rule codes"
            assert match.group("reason"), \
                f"{where}: noqa must carry a '-- reason' tail"

    def test_no_baseline_needed(self):
        """The repo gates with zero baselined findings — keep it so."""
        assert not (SRC.parent.parent / "repro-baseline.json").exists()


class TestGateBites:
    def test_unseeding_the_cache_rng_is_detected(self):
        """Acceptance check: replacing the seeded replacement-policy
        RNG in ``repro/cpu/cache.py`` with an unseeded one must fail
        the lint."""
        source = (SRC / "cpu" / "cache.py").read_text()
        assert "random.Random(rng_seed)" in source
        mutated = source.replace(
            "random.Random(rng_seed)", "random.Random()"
        )
        findings = _analyzer().analyze_source(mutated, "cpu/cache.py")
        assert any(f.rule == "REP001" for f in findings)

    def test_wall_clock_in_engine_is_detected(self):
        """A deadline taken from the wall clock instead of the
        monotonic clock would trip REP002."""
        source = (SRC / "exec" / "engine.py").read_text()
        mutated = source.replace("time.monotonic()", "time.time()")
        assert mutated != source
        findings = _analyzer().analyze_source(mutated, "exec/engine.py")
        assert any(f.rule == "REP002" for f in findings)

    def test_unsorted_directory_listing_is_detected(self):
        """Dropping the sorted() around the cache's on-disk glob
        would reintroduce filesystem-order iteration (REP003)."""
        source = (SRC / "exec" / "cache.py").read_text()
        mutated = source.replace(
            'sorted(self.path.glob("*.pkl"))',
            'self.path.glob("*.pkl")',
        )
        assert mutated != source
        findings = _analyzer().analyze_source(mutated, "exec/cache.py")
        assert any(f.rule == "REP003" for f in findings)

    def test_swallowing_interrupts_is_detected(self):
        """Downgrading the serial path's KeyboardInterrupt re-raise
        to a silent catch-all would trip REP007."""
        snippet = (
            "def guard(step):\n"
            "    try:\n"
            "        step()\n"
            "    except BaseException:\n"
            "        return None\n"
        )
        findings = _analyzer().analyze_source(snippet, "snippet.py")
        assert [f.rule for f in findings] == ["REP007"]
