"""Framework behaviour: config, baselines, reporters, exit codes.

The checkers are tested in ``test_checkers.py``; here we pin down the
machinery around them — rule selection, TOML configuration, baseline
absorb/write, report determinism, and the 0/1/2 exit-status contract
of both entry points.
"""

import json

import pytest

from repro.analysis import (
    AnalysisConfig,
    Analyzer,
    ConfigError,
    default_checkers,
    load_baseline,
    load_config,
    render_json,
    render_text,
    write_baseline,
)
from repro.analysis.cli import EXIT_CLEAN, EXIT_FINDINGS, EXIT_USAGE, main

DIRTY = 'import os\nlevel = os.getenv("X")\n'
CLEAN = "def f(x):\n    return x\n"


def run_analyzer(tmp_path, sources, config=None):
    for name, text in sources.items():
        (tmp_path / name).write_text(text)
    analyzer = Analyzer(default_checkers(), config)
    return analyzer.analyze_paths([tmp_path], root=tmp_path)


class TestSelection:
    def test_ignore_drops_rule(self, tmp_path):
        result = run_analyzer(
            tmp_path, {"a.py": DIRTY},
            AnalysisConfig(ignore=["REP006"]),
        )
        assert result.clean

    def test_select_runs_only_listed(self, tmp_path):
        source = DIRTY + "import time\nt = time.time()\n"
        result = run_analyzer(
            tmp_path, {"a.py": source},
            AnalysisConfig(select=["REP002"]),
        )
        assert [f.rule for f in result.findings] == ["REP002"]

    def test_unknown_rule_rejected(self):
        with pytest.raises(ConfigError, match="REP999"):
            Analyzer(default_checkers(),
                     AnalysisConfig(select=["REP999"]))

    def test_exclude_glob_skips_file(self, tmp_path):
        result = run_analyzer(
            tmp_path, {"a.py": DIRTY, "skip_me.py": DIRTY},
            AnalysisConfig(exclude=["skip_*.py"]),
        )
        assert {f.path for f in result.findings} == {"a.py"}


class TestConfigLoading:
    def test_explicit_toml(self, tmp_path):
        config_file = tmp_path / "lint.toml"
        config_file.write_text(
            'ignore = ["REP006"]\nallow_calls = ["time.time"]\n'
        )
        config = load_config(config_file)
        assert config.ignore == ["REP006"]
        assert config.allow_calls == {"time.time"}

    def test_pyproject_discovery(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            "[tool.repro.analysis]\nignore = [\"REP005\"]\n"
        )
        nested = tmp_path / "pkg"
        nested.mkdir()
        config = load_config(start=nested)
        assert config.ignore == ["REP005"]

    def test_bad_toml_is_config_error(self, tmp_path):
        bad = tmp_path / "bad.toml"
        bad.write_text("select = not-toml [")
        with pytest.raises(ConfigError):
            load_config(bad)

    def test_ill_typed_key_rejected(self, tmp_path):
        bad = tmp_path / "bad.toml"
        bad.write_text('select = "REP001"\n')
        with pytest.raises(ConfigError, match="list of strings"):
            load_config(bad)

    def test_unknown_key_rejected(self, tmp_path):
        bad = tmp_path / "bad.toml"
        bad.write_text('no_such_key = []\n')
        with pytest.raises(ConfigError, match="no_such_key"):
            load_config(bad)


class TestBaseline:
    def test_roundtrip_absorbs_old_findings(self, tmp_path):
        result = run_analyzer(tmp_path, {"a.py": DIRTY})
        assert len(result.findings) == 1
        baseline = tmp_path / "baseline.json"
        assert write_baseline(result.findings, baseline) == 1
        known = load_baseline(baseline)
        assert {f.fingerprint() for f in result.findings} == known

    def test_new_finding_not_absorbed(self, tmp_path):
        result = run_analyzer(tmp_path, {"a.py": DIRTY})
        baseline = tmp_path / "baseline.json"
        write_baseline(result.findings, baseline)
        known = load_baseline(baseline)
        fresh = run_analyzer(
            tmp_path, {"b.py": "import time\nt = time.time()\n"},
        )
        new = [f for f in fresh.findings
               if f.fingerprint() not in known]
        assert [f.rule for f in new] == ["REP002"]

    def test_fingerprint_survives_line_shift(self, tmp_path):
        before = run_analyzer(tmp_path, {"a.py": DIRTY})
        shifted = "# a comment\n\n" + DIRTY
        after = run_analyzer(tmp_path, {"a.py": shifted})
        assert [f.fingerprint() for f in before.findings] == \
            [f.fingerprint() for f in after.findings]

    def test_malformed_baseline_rejected(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text('{"fingerprints": "nope"}')
        with pytest.raises(ConfigError):
            load_baseline(bad)


class TestReporters:
    def test_text_report_lines(self, tmp_path):
        result = run_analyzer(tmp_path, {"a.py": DIRTY})
        text = render_text(result)
        assert "a.py:2:9: REP006" in text
        assert "1 finding" in text

    def test_json_report_shape(self, tmp_path):
        result = run_analyzer(tmp_path, {"a.py": DIRTY})
        payload = json.loads(render_json(result))
        assert payload["version"] == 1
        assert payload["files"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "REP006"
        assert finding["path"] == "a.py"
        assert finding["fingerprint"]

    def test_reports_are_deterministic(self, tmp_path):
        sources = {"b.py": DIRTY, "a.py": DIRTY,
                   "c.py": "import time\nt = time.time()\n"}
        first = render_json(run_analyzer(tmp_path, sources))
        second = render_json(run_analyzer(tmp_path, sources))
        assert first == second
        paths = [f["path"] for f
                 in json.loads(first)["findings"]]
        assert paths == sorted(paths)


class TestParseErrors:
    def test_syntax_error_becomes_rep000(self, tmp_path):
        result = run_analyzer(tmp_path, {"a.py": "def broken(:\n"})
        assert [f.rule for f in result.findings] == ["REP000"]
        assert "does not parse" in result.findings[0].message


class TestExitCodes:
    def test_clean_tree_exits_0(self, tmp_path, capsys):
        (tmp_path / "a.py").write_text(CLEAN)
        assert main([str(tmp_path)]) == EXIT_CLEAN

    def test_findings_exit_1(self, tmp_path, capsys):
        (tmp_path / "a.py").write_text(DIRTY)
        assert main([str(tmp_path)]) == EXIT_FINDINGS
        assert "REP006" in capsys.readouterr().out

    def test_missing_path_exits_2(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope")]) == EXIT_USAGE

    def test_unknown_rule_exits_2(self, tmp_path, capsys):
        (tmp_path / "a.py").write_text(CLEAN)
        assert main([str(tmp_path), "--select", "REP999"]) == EXIT_USAGE

    def test_json_format_via_cli(self, tmp_path, capsys):
        (tmp_path / "a.py").write_text(DIRTY)
        assert main([str(tmp_path), "--format", "json"]) == EXIT_FINDINGS
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["rule"] == "REP006"

    def test_write_then_use_baseline(self, tmp_path, capsys):
        (tmp_path / "a.py").write_text(DIRTY)
        baseline = tmp_path / "baseline.json"
        assert main([str(tmp_path), "--write-baseline",
                     str(baseline)]) == EXIT_CLEAN
        capsys.readouterr()
        assert main([str(tmp_path), "--baseline",
                     str(baseline)]) == EXIT_CLEAN
        assert "1 absorbed by baseline" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        for code in ("REP001", "REP004", "REP007"):
            assert code in out
