"""Per-checker fixtures: one detection and one clean pass per rule.

Each REP0xx rule is exercised on minimal positive snippets (the
hazard, detected) and negative snippets (the sanctioned idiom, not
flagged) — the acceptance contract for the whole suite.
"""

import textwrap

from repro.analysis import AnalysisConfig, Analyzer, default_checkers


def findings(source, config=None):
    analyzer = Analyzer(default_checkers(), config)
    return analyzer.analyze_source(textwrap.dedent(source), "snippet.py")


def rules(source, config=None):
    return [f.rule for f in findings(source, config)]


class TestREP001UnseededRandomness:
    def test_module_level_random_call(self):
        assert rules("""
            import random
            x = random.random()
        """) == ["REP001"]

    def test_numpy_global_rng(self):
        assert rules("""
            import numpy as np
            np.random.seed(0)
            x = np.random.rand(3)
        """) == ["REP001", "REP001"]

    def test_argless_default_rng(self):
        assert rules("""
            import numpy as np
            rng = np.random.default_rng()
        """) == ["REP001"]

    def test_argless_random_constructor(self):
        assert rules("""
            import random
            r = random.Random()
        """) == ["REP001"]

    def test_seeded_generators_are_clean(self):
        assert rules("""
            import random
            import numpy as np
            r = random.Random(7)
            rng = np.random.default_rng(1234)
            legacy = np.random.RandomState(42)
            x = r.random() + rng.random()
        """) == []

    def test_from_import_default_rng(self):
        assert rules("""
            from numpy.random import default_rng
            rng = default_rng()
        """) == ["REP001"]


class TestREP002EntropySource:
    def test_wall_clock(self):
        assert rules("""
            import time
            stamp = time.time()
        """) == ["REP002"]

    def test_uuid4_via_from_import(self):
        assert rules("""
            from uuid import uuid4
            run_id = uuid4()
        """) == ["REP002"]

    def test_os_urandom(self):
        assert rules("""
            import os
            salt = os.urandom(8)
        """) == ["REP002"]

    def test_monotonic_clock_is_clean(self):
        assert rules("""
            import time
            deadline = time.monotonic() + 5
            time.sleep(0.01)
        """) == []

    def test_allowlist_sanctions_a_call(self):
        config = AnalysisConfig(allow_calls={"time.time"})
        assert rules("""
            import time
            stamp = time.time()
        """, config) == []


class TestREP003UnorderedIteration:
    def test_for_over_set_call(self):
        assert rules("""
            def total(xs):
                acc = 0.0
                for x in set(xs):
                    acc += x
                return acc
        """) == ["REP003"]

    def test_sum_over_set(self):
        assert rules("""
            def total(xs):
                return sum(set(xs))
        """) == ["REP003"]

    def test_comprehension_over_glob(self):
        assert rules("""
            def stems(path):
                return [f.stem for f in path.glob("*.pkl")]
        """) == ["REP003"]

    def test_join_over_set_literal(self):
        assert rules("""
            def label(a, b):
                return ",".join({a, b})
        """) == ["REP003"]

    def test_sorted_wrapping_is_clean(self):
        assert rules("""
            def total(xs, path):
                acc = sum(sorted(set(xs)))
                for f in sorted(path.glob("*.pkl")):
                    acc += 1
                return acc
        """) == []

    def test_order_insensitive_reductions_are_clean(self):
        assert rules("""
            def describe(xs):
                return len(set(xs)), min(set(xs)), max(set(xs))
        """) == []


class TestREP004ForkSafety:
    def test_lambda_to_executor(self):
        assert rules("""
            def launch(run_grid, tasks):
                run_grid(tasks, progress=lambda d, t: None)
        """) == ["REP004"]

    def test_closure_to_executor(self):
        assert rules("""
            def launch(pool, item):
                def work():
                    return item
                pool.submit(work)
        """) == ["REP004"]

    def test_bound_method_to_executor(self):
        assert rules("""
            class Driver:
                def go(self, pool):
                    pool.submit(self.step, 1)
        """) == ["REP004"]

    def test_global_rebinding(self):
        assert rules("""
            STATE = 0

            def bump():
                global STATE
                STATE += 1
        """) == ["REP004"]

    def test_module_level_function_is_clean(self):
        assert rules("""
            def work(x):
                return x

            def launch(pool):
                pool.submit(work, 1)
        """) == []

    def test_plain_calls_not_flagged(self):
        assert rules("""
            def compute(transform, xs):
                return transform(xs, key=lambda x: x)
        """) == []


class TestREP005MutableDefault:
    def test_list_default(self):
        assert rules("""
            def collect(x, acc=[]):
                acc.append(x)
                return acc
        """) == ["REP005"]

    def test_dict_and_set_call_defaults(self):
        assert rules("""
            def f(m={}, s=set()):
                return m, s
        """) == ["REP005", "REP005"]

    def test_none_default_is_clean(self):
        assert rules("""
            def collect(x, acc=None, shape=()):
                acc = [] if acc is None else acc
                acc.append(x)
                return acc
        """) == []


class TestREP006EnvironRead:
    def test_environ_get(self):
        assert rules("""
            import os
            level = os.environ.get("REPRO_LOG")
        """) == ["REP006"]

    def test_environ_subscript(self):
        assert rules("""
            import os
            level = os.environ["REPRO_LOG"]
        """) == ["REP006"]

    def test_getenv(self):
        assert rules("""
            import os
            level = os.getenv("REPRO_LOG")
        """) == ["REP006"]

    def test_from_import_environ(self):
        assert rules("""
            from os import environ
            level = environ.get("REPRO_LOG")
        """) == ["REP006"]

    def test_explicit_configuration_is_clean(self):
        assert rules("""
            def configure(level):
                return {"level": level}
        """) == []


class TestREP007ExceptionSwallow:
    def test_bare_except(self):
        assert rules("""
            def f(x):
                try:
                    return x()
                except:
                    return None
        """) == ["REP007"]

    def test_base_exception_without_reraise(self):
        assert rules("""
            def f(x):
                try:
                    return x()
                except BaseException:
                    return None
        """) == ["REP007"]

    def test_silent_exception_pass(self):
        assert rules("""
            def f(x):
                try:
                    return x()
                except Exception:
                    pass
        """) == ["REP007"]

    def test_reraise_is_clean(self):
        assert rules("""
            def f(x):
                try:
                    return x()
                except BaseException:
                    cleanup()
                    raise
        """) == []

    def test_narrow_handler_is_clean(self):
        assert rules("""
            def f(x):
                try:
                    return x()
                except (OSError, ValueError) as exc:
                    return str(exc)
        """) == []


class TestSuppressions:
    def test_noqa_silences_listed_rule(self):
        assert rules("""
            import os
            level = os.getenv("X")  # repro: noqa[REP006] -- CLI entry
        """) == []

    def test_noqa_other_rule_does_not_silence(self):
        # The live REP006 still reports, and the suppression naming
        # the wrong rule is itself flagged stale (REP008).
        assert rules("""
            import os
            level = os.getenv("X")  # repro: noqa[REP001] -- wrong rule
        """) == ["REP006", "REP008"]

    def test_bare_noqa_silences_everything(self):
        assert rules("""
            import os, time
            x = os.getenv("X") and time.time()  # repro: noqa
        """) == []

    def test_multi_rule_noqa(self):
        assert rules("""
            import os, time
            x = os.getenv("X") and time.time()  # repro: noqa[REP002,REP006]
        """) == []
