"""Gate-bite tests for the REP1xx/REP2xx protocol rules.

Each test plants exactly one protocol violation in a fixture copy of
the *real* protocol code (``dist/spool.py``, ``exec/cache.py``,
``exec/journal.py``, ``dist/worker.py``) and asserts the lint names
it — correct rule ID, correct file, correct line.  This is the
mutation-style acceptance check from the PR issue: the rules must
bite on the exact code they were written to defend, not only on toy
snippets.  Each mutation's sibling assertion — that the *unmutated*
source is clean — pins the zero-false-positive contract on the same
files.
"""

from pathlib import Path

import repro
from repro.analysis import Analyzer, default_checkers, load_config

SRC = Path(repro.__file__).resolve().parent


def _analyzer():
    return Analyzer(default_checkers(), load_config(start=SRC))


def _lint(source: str, path: str):
    return _analyzer().analyze_source(source, path)


def _mutate(relpath: str, old: str, new: str):
    """(original, mutated, 1-based line of the first mutated line)."""
    source = (SRC / relpath).read_text()
    assert old in source, f"{relpath} drifted: mutation anchor gone"
    mutated = source.replace(old, new, 1)
    assert mutated != source
    line = source[:source.index(old)].count("\n") + 1
    return source, mutated, line


def _rules(findings):
    return [f.rule for f in findings]


class TestArtifactIntegrityGateBites:
    def test_rep101_direct_cache_entry_write(self):
        """Dropping cache.put's seam publish for a direct write
        publishes torn entries; REP101 (not atomic) and REP105 (not
        through the seam) must both name the write."""
        old = (
            "            fsfault.publish_bytes(self._file(key), blob)\n"
        )
        new = (
            "            self._file(key).write_bytes(blob)\n"
        )
        source, mutated, line = _mutate("exec/cache.py", old, new)
        clean = _rules(_lint(source, "exec/cache.py"))
        assert "REP101" not in clean
        assert "REP105" not in clean
        findings = _lint(mutated, "exec/cache.py")
        for rule in ("REP101", "REP105"):
            hits = [f for f in findings if f.rule == rule]
            assert hits, f"{rule} missed the in-place sealed write"
            assert hits[0].path == "exec/cache.py"
            assert hits[0].line == line

    def test_rep101_spool_write_atomic_gutted(self):
        """Replacing Spool._write_atomic's seam publish with a plain
        write breaks every artifact the spool publishes (the sealed
        payload arrives via the blob parameter — caller propagation
        must still see it)."""
        old = "        fsfault.publish_bytes(path, blob, retries=2)\n"
        new = "        path.write_bytes(blob)\n"
        source, mutated, line = _mutate("dist/spool.py", old, new)
        assert "REP101" not in _rules(_lint(source, "dist/spool.py"))
        hits = [f for f in _lint(mutated, "dist/spool.py")
                if f.rule == "REP101"]
        assert hits, "REP101 missed the gutted atomic-write helper"
        assert hits[0].line == line

    def test_rep105_open_coded_atomic_dance(self):
        """An open-coded mkstemp-style temp+replace is *atomic* —
        REP101 passes — but invisible to fault injection; REP105
        alone must flag it and demand the fsfault seam."""
        old = "        fsfault.publish_bytes(path, blob, retries=2)\n"
        new = (
            "        tmp = path.parent / "
            "f\"{path.name}.tmp-{os.getpid()}\"\n"
            "        tmp.write_bytes(blob)\n"
            "        os.replace(tmp, path)\n"
        )
        source, mutated, line = _mutate("dist/spool.py", old, new)
        clean = _rules(_lint(source, "dist/spool.py"))
        assert "REP105" not in clean
        findings = _lint(mutated, "dist/spool.py")
        assert "REP101" not in _rules(findings), \
            "the open-coded dance is atomic; only REP105 should bite"
        hits = [f for f in findings if f.rule == "REP105"]
        assert hits, "REP105 missed the seam bypass"
        assert hits[0].line == line + 1  # the write_bytes line

    def test_rep102_read_result_skips_decode(self):
        """Parsing a sealed .result without the check-wrapping
        _decode trusts torn files; REP102 must name the loads call."""
        old = (
            "        payload = _decode(blob, kind=RESULT_KIND, "
            "version=self.version)\n"
        )
        new = (
            "        payload = json.loads(blob.decode(\"utf-8\"))\n"
        )
        source, mutated, line = _mutate("dist/spool.py", old, new)
        assert "REP102" not in _rules(_lint(source, "dist/spool.py"))
        hits = [f for f in _lint(mutated, "dist/spool.py")
                if f.rule == "REP102"]
        assert hits, "REP102 missed the unchecked sealed read"
        assert hits[0].line == line

    def test_rep103_task_key_without_canonical_blob(self):
        """Hashing plain json.dumps instead of canonical_blob makes
        the cache key insertion-order dependent; REP103 must fire."""
        old = ("    return hashlib.sha256("
               "canonical_blob(payload)).hexdigest()\n")
        new = ("    return hashlib.sha256(json.dumps(payload)"
               ".encode(\"utf-8\")).hexdigest()\n")
        source, mutated, line = _mutate("exec/cache.py", old, new)
        assert "REP103" not in _rules(_lint(source, "exec/cache.py"))
        hits = [f for f in _lint("import json\n" + mutated,
                                 "exec/cache.py")
                if f.rule == "REP103"]
        assert hits, "REP103 missed the noncanonical key hash"
        assert hits[0].line == line + 1  # the prepended import


class TestConcurrencyGateBites:
    def test_rep201_wall_clock_lease_deadline(self):
        """write_lease computing its deadline from time.time() is the
        NTP-step lease bug; REP201 must name the assignment."""
        old = "        deadline = time.monotonic() + float(ttl)\n"
        new = "        deadline = time.time() + float(ttl)\n"
        source, mutated, line = _mutate("dist/spool.py", old, new)
        assert "REP201" not in _rules(_lint(source, "dist/spool.py"))
        hits = [f for f in _lint(mutated, "dist/spool.py")
                if f.rule == "REP201"]
        assert hits, "REP201 missed the wall-clock lease deadline"
        assert any(f.line == line for f in hits)

    def test_rep202_sleep_under_journal_flock(self):
        """A sleep inside the journal's exclusive flock window stalls
        every concurrent writer; REP202 must name the sleep."""
        old = (
            "                    fsfault.vfs_write(self._handle, data)\n"
        )
        new = (
            "                    fsfault.vfs_write(self._handle, data)\n"
            "                    time.sleep(0.01)\n"
        )
        source, mutated, line = _mutate("exec/journal.py", old, new)
        assert "REP202" not in _rules(
            _lint(source, "exec/journal.py"))
        mutated = "import time\n" + mutated
        hits = [f for f in _lint(mutated, "exec/journal.py")
                if f.rule == "REP202"]
        assert hits, "REP202 missed the sleep under flock"
        assert hits[0].line == line + 2  # import + write line above

    def test_rep203_fork_after_heartbeat_thread(self):
        """Forking after the worker's heartbeat thread starts would
        freeze its locks in the child; REP203 must name the fork."""
        old = (
            "        thread.start()\n"
            "        last_work = time.monotonic()\n"
        )
        new = (
            "        thread.start()\n"
            "        os.fork()\n"
            "        last_work = time.monotonic()\n"
        )
        source, mutated, line = _mutate("dist/worker.py", old, new)
        assert "REP203" not in _rules(_lint(source, "dist/worker.py"))
        hits = [f for f in _lint(mutated, "dist/worker.py")
                if f.rule == "REP203"]
        assert hits, "REP203 missed the post-thread fork"
        assert hits[0].line == line + 1  # the inserted os.fork()

    def test_rep204_exit_on_the_happy_path(self):
        """os._exit on a normal completion path skips the release and
        the journal flush; REP204 must name it (the sanctioned chaos
        hooks are suppressed with reasons, this one is not)."""
        old = (
            "        self.executed += 1\n"
            "        self.spool.release(key, self.worker_id)\n"
        )
        new = (
            "        self.executed += 1\n"
            "        os._exit(3)\n"
            "        self.spool.release(key, self.worker_id)\n"
        )
        source, mutated, line = _mutate("dist/worker.py", old, new)
        assert "REP204" not in _rules(_lint(source, "dist/worker.py"))
        hits = [f for f in _lint(mutated, "dist/worker.py")
                if f.rule == "REP204"]
        assert hits, "REP204 missed the unsanctioned os._exit"
        assert hits[0].line == line + 1


class TestProtocolCodeStaysClean:
    """The real protocol files under the full armed suite — the
    calibration half of the gate-bite contract."""

    def test_protocol_modules_report_nothing(self):
        analyzer = _analyzer()
        result = analyzer.analyze_paths(
            [SRC / "dist", SRC / "exec", SRC / "guard"],
            root=SRC.parent,
        )
        assert result.clean, "\n".join(
            f.render() for f in result.findings
        )
