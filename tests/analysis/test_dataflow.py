"""Adversarial shapes for the flow/call-graph layer.

The protocol rules only earn their zero-false-positive calibration if
the underlying dataflow survives code that *obscures* where values
come from: aliased imports, decorated wrappers, closures re-exported
through ``__all__``, callables stashed in containers.  Each test here
feeds one such shape through the full analyzer and asserts the rule
still fires (or stays silent on the sanctioned variant) — plus a few
direct probes of :class:`FunctionFlow` / :class:`PackageIndex` where
the interesting property is the machinery itself.
"""

import ast

from repro.analysis import Analyzer, default_checkers
from repro.analysis.callgraph import PackageIndex, module_name_for
from repro.analysis.config import AnalysisConfig
from repro.analysis.dataflow import FunctionFlow, walk_scope


def _lint(source: str, path: str = "mod.py"):
    analyzer = Analyzer(default_checkers(), AnalysisConfig())
    return analyzer.analyze_source(source, path)


def _rules(source: str, path: str = "mod.py"):
    return {f.rule for f in _lint(source, path)}


class TestAliasedImports:
    def test_wall_clock_behind_module_alias(self):
        """``import time as clock`` must not launder time.time()."""
        source = (
            "import time as clock\n"
            "def lease(ttl):\n"
            "    deadline = clock.time() + ttl\n"
            "    return deadline\n"
        )
        assert "REP201" in _rules(source)

    def test_from_import_alias(self):
        """``from time import time as now`` resolves the same."""
        source = (
            "from time import time as now\n"
            "def lease(ttl):\n"
            "    deadline = now() + ttl\n"
            "    return deadline\n"
        )
        assert "REP201" in _rules(source)

    def test_monotonic_behind_alias_stays_clean(self):
        source = (
            "from time import monotonic as now\n"
            "def lease(ttl):\n"
            "    deadline = now() + ttl\n"
            "    return deadline\n"
        )
        assert "REP201" not in _rules(source)


class TestDecoratedFunctions:
    SEALER = (
        "import functools\n"
        "import os\n"
        "from repro.guard.seal import seal\n"
        "def traced(fn):\n"
        "    @functools.wraps(fn)\n"
        "    def inner(*args, **kwargs):\n"
        "        return fn(*args, **kwargs)\n"
        "    return inner\n"
        "@traced\n"
        "def encode(payload):\n"
        "    return seal(payload, kind='x')\n"
    )

    def test_seal_reaches_through_decorated_wrapper(self):
        """A decorated local sealer still marks its result sealed —
        the index records the function, decorators and all."""
        source = self.SEALER + (
            "def save(path, payload):\n"
            "    blob = encode(payload)\n"
            "    path.write_bytes(blob)\n"
        )
        assert "REP101" in _rules(source)

    def test_atomic_publish_of_decorated_seal_is_sanctioned(self):
        source = self.SEALER + (
            "def save(path, payload):\n"
            "    blob = encode(payload)\n"
            "    tmp = path.with_name(path.name + '.tmp')\n"
            "    tmp.write_bytes(blob)\n"
            "    os.replace(tmp, path)\n"
        )
        assert "REP101" not in _rules(source)


class TestReexportedClosures:
    def test_rooted_write_inside_closure_factory(self):
        """A closure built by a factory and re-exported via __all__
        still gets flagged for writing under an artifact root."""
        source = (
            "__all__ = ['make_publisher']\n"
            "def make_publisher(results_dir):\n"
            "    def publish(key, blob):\n"
            "        path = results_dir / key\n"
            "        path.write_bytes(blob)\n"
            "    return publish\n"
        )
        findings = [f for f in _lint(source) if f.rule == "REP101"]
        assert findings, "closure write under results_dir missed"
        assert findings[0].line == 5

    def test_publishing_closure_is_sanctioned(self):
        source = (
            "__all__ = ['make_publisher']\n"
            "import os\n"
            "def make_publisher(results_dir):\n"
            "    def publish(key, blob):\n"
            "        tmp = results_dir / (key + '.tmp')\n"
            "        tmp.write_bytes(blob)\n"
            "        os.replace(tmp, results_dir / key)\n"
            "    return publish\n"
        )
        assert "REP101" not in _rules(source)


class TestContainerDispatch:
    def test_lambda_in_dict_submitted_to_run_grid(self):
        """A fork primitive hidden in a dispatch-dict lambda is still
        a fork-after-thread hazard when invoked."""
        source = (
            "import threading\n"
            "from repro.exec.engine import run_grid\n"
            "def main(tasks, poll):\n"
            "    worker = threading.Thread(target=poll)\n"
            "    worker.start()\n"
            "    actions = {'go': lambda: run_grid(tasks)}\n"
            "    return actions['go']()\n"
        )
        findings = [f for f in _lint(source) if f.rule == "REP203"]
        assert findings, "dict-dispatched run_grid missed"
        assert findings[0].line == 7

    def test_benign_dispatch_dict_stays_clean(self):
        source = (
            "import threading\n"
            "def main(tasks, poll):\n"
            "    worker = threading.Thread(target=poll)\n"
            "    worker.start()\n"
            "    actions = {'go': lambda: len(tasks)}\n"
            "    return actions['go']()\n"
        )
        assert "REP203" not in _rules(source)


class TestFlowPrimitives:
    def _flow(self, source: str, fname: str) -> FunctionFlow:
        tree = ast.parse(source)
        fn = next(
            n for n in ast.walk(tree)
            if isinstance(n, ast.FunctionDef) and n.name == fname
        )
        return FunctionFlow(fn, lambda call: None)

    def test_origins_cross_tuple_unpacking(self):
        flow = self._flow(
            "def f():\n"
            "    a, b = make(), other()\n"
            "    c = a\n"
            "    return c\n",
            "f",
        )
        ret = flow.scope.body[-1].value
        names = {
            n.id for n in flow.origin_nodes(ret)
            if isinstance(n, ast.Name)
        }
        assert "a" in names

    def test_scope_walk_skips_nested_bodies(self):
        """walk_scope must not leak a nested function's statements
        into its parent — REP2xx windows are per-scope."""
        tree = ast.parse(
            "def outer():\n"
            "    x = 1\n"
            "    def inner():\n"
            "        y = 2\n"
            "    return inner\n"
        )
        outer = tree.body[0]
        assigned = {
            t.id for n in walk_scope(outer)
            if isinstance(n, ast.Assign)
            for t in n.targets if isinstance(t, ast.Name)
        }
        assert assigned == {"x"}


class TestPackageIndex:
    def test_relative_import_resolves_across_modules(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        (pkg / "seal.py").write_text(
            "def make_seal(blob):\n    return blob\n"
        )
        (pkg / "io.py").write_text(
            "from .seal import make_seal\n"
            "def encode(payload):\n"
            "    return make_seal(payload)\n"
        )
        index = PackageIndex.from_paths(
            [pkg / "seal.py", pkg / "io.py"]
        )
        info = index.lookup("pkg.io.encode")
        assert info is not None
        hit = {}
        assert index.reaches(
            info, lambda name: name.endswith("make_seal"), hit
        )

    def test_module_name_climbs_init_chain(self, tmp_path):
        pkg = tmp_path / "a" / "b"
        pkg.mkdir(parents=True)
        (tmp_path / "a" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        (pkg / "mod.py").write_text("")
        assert module_name_for(pkg / "mod.py") == "a.b.mod"

    def test_method_resolution_within_class(self):
        source = (
            "class Spool:\n"
            "    def _encode(self, payload):\n"
            "        return payload\n"
            "    def write(self, payload):\n"
            "        return self._encode(payload)\n"
        )
        index = PackageIndex.from_trees(
            [("spool", ast.parse(source), None)]
        )
        info = index.lookup("spool.Spool.write")
        assert info is not None
        resolved = [name for _, name in info.calls]
        assert "spool.Spool._encode" in resolved
