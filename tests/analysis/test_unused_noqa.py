"""REP008 (unused suppression) semantics and the --fix-unused-noqa
rewriter.

The staleness judgement is deliberately conservative: a listed code
is stale only when it is unknown (a typo) or armed-this-run yet
silent; a bare ``# repro: noqa`` is only judged when *every* rule is
armed (a disarmed rule might be what it silences).  Prose that merely
mentions the syntax — docstrings, comments with trailing words — is
never a directive.  And the repo's own tree must audit clean: zero
stale suppressions, enforced here so a refactor that obsoletes a
noqa fails CI until the comment goes too.
"""

from pathlib import Path

import repro
from repro.analysis import Analyzer, default_checkers, load_config
from repro.analysis.config import AnalysisConfig
from repro.analysis.core import UNUSED_NOQA_RULE, fix_unused_noqa
from repro.analysis.cli import EXIT_CLEAN, EXIT_FINDINGS, main

SRC = Path(repro.__file__).resolve().parent


def _analyze(tmp_path, source, config=None):
    (tmp_path / "mod.py").write_text(source)
    analyzer = Analyzer(default_checkers(), config)
    return analyzer.analyze_paths([tmp_path], root=tmp_path)


class TestStaleness:
    def test_stale_listed_code_is_flagged(self, tmp_path):
        result = _analyze(tmp_path, "x = 1  # repro: noqa[REP001]\n")
        assert [f.rule for f in result.findings] == [UNUSED_NOQA_RULE]
        assert "REP001" in result.findings[0].message
        (entry,) = result.unused_noqa
        assert entry.codes == ("REP001",)
        assert entry.kept == ()

    def test_live_suppression_is_not_flagged(self, tmp_path):
        result = _analyze(
            tmp_path,
            "import random\n"
            "r = random.random()  # repro: noqa[REP001] -- probe\n",
        )
        assert result.clean
        assert result.suppressed == 1

    def test_unknown_code_is_always_flagged(self, tmp_path):
        """A typo'd code never protects anything — flagged even when
        most rules are disarmed."""
        result = _analyze(
            tmp_path, "x = 1  # repro: noqa[REP999]\n",
            AnalysisConfig(select=["REP001", UNUSED_NOQA_RULE]),
        )
        assert [f.rule for f in result.findings] == [UNUSED_NOQA_RULE]

    def test_known_disarmed_code_is_left_alone(self, tmp_path):
        """This run cannot tell whether a disarmed rule would fire."""
        result = _analyze(
            tmp_path,
            "import time\n"
            "t = time.time()  # repro: noqa[REP002]\n",
            AnalysisConfig(select=["REP001", UNUSED_NOQA_RULE]),
        )
        assert result.clean

    def test_bare_noqa_judged_only_when_all_rules_armed(self, tmp_path):
        source = "x = 1  # repro: noqa\n"
        partial = _analyze(
            tmp_path, source,
            AnalysisConfig(select=["REP001", UNUSED_NOQA_RULE]),
        )
        assert partial.clean
        full = _analyze(tmp_path, source)
        assert [f.rule for f in full.findings] == [UNUSED_NOQA_RULE]

    def test_partial_staleness_reports_kept_codes(self, tmp_path):
        result = _analyze(
            tmp_path,
            "import random\n"
            "r = random.random()"
            "  # repro: noqa[REP001,REP003] -- probe\n",
        )
        (entry,) = result.unused_noqa
        assert entry.codes == ("REP003",)
        assert entry.kept == ("REP001",)

    def test_rep008_cannot_suppress_itself(self, tmp_path):
        """A stale comment must be removed, not silenced: listing
        REP008 in a noqa is itself stale."""
        result = _analyze(tmp_path, "x = 1  # repro: noqa[REP008]\n")
        assert [f.rule for f in result.findings] == [UNUSED_NOQA_RULE]


class TestProseIsNotADirective:
    def test_docstring_mention_neither_suppresses_nor_stales(
            self, tmp_path):
        result = _analyze(
            tmp_path,
            '"""Docs: silence with ``# repro: noqa[REP001]``."""\n'
            "x = 1\n",
        )
        assert result.clean
        assert result.suppressed == 0

    def test_comment_with_trailing_prose_is_ignored(self, tmp_path):
        result = _analyze(
            tmp_path,
            "x = 1  # repro: noqa would go here if needed\n",
        )
        assert result.clean

    def test_reason_tail_still_counts_as_directive(self, tmp_path):
        result = _analyze(
            tmp_path,
            "x = 1  # repro: noqa[REP001] -- any free-form reason\n",
        )
        assert [f.rule for f in result.findings] == [UNUSED_NOQA_RULE]


class TestFixer:
    def test_fully_stale_directive_is_cut(self, tmp_path):
        path = tmp_path / "mod.py"
        result = _analyze(tmp_path, "x = 1  # repro: noqa[REP001]\n")
        rewritten, touched = fix_unused_noqa(result.unused_noqa)
        assert (rewritten, touched) == (1, 1)
        assert path.read_text() == "x = 1\n"

    def test_partial_trim_preserves_reason(self, tmp_path):
        path = tmp_path / "mod.py"
        result = _analyze(
            tmp_path,
            "import random\n"
            "r = random.random()"
            "  # repro: noqa[REP001,REP003] -- probe\n",
        )
        fix_unused_noqa(result.unused_noqa)
        assert path.read_text().splitlines()[1] == (
            "r = random.random()  # repro: noqa[REP001] -- probe"
        )

    def test_comment_only_line_left_blank(self, tmp_path):
        """Line numbers never shift: a directive-only line empties."""
        path = tmp_path / "mod.py"
        result = _analyze(
            tmp_path, "# repro: noqa[REP001]\nx = 1\n"
        )
        fix_unused_noqa(result.unused_noqa)
        assert path.read_text() == "\nx = 1\n"

    def test_drifted_file_is_skipped(self, tmp_path):
        path = tmp_path / "mod.py"
        result = _analyze(tmp_path, "x = 1  # repro: noqa[REP001]\n")
        path.write_text("y = 2\n")
        rewritten, touched = fix_unused_noqa(result.unused_noqa)
        assert (rewritten, touched) == (0, 0)
        assert path.read_text() == "y = 2\n"

    def test_cli_flag_round_trip(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text("x = 1  # repro: noqa[REP001]\n")
        assert main([str(path)]) == EXIT_FINDINGS
        assert main([str(path), "--fix-unused-noqa"]) == EXIT_CLEAN
        assert path.read_text() == "x = 1\n"
        assert main([str(path)]) == EXIT_CLEAN


class TestTreeAudit:
    def test_src_repro_has_zero_stale_suppressions(self):
        """Every noqa in the shipped tree still earns its keep."""
        analyzer = Analyzer(
            default_checkers(), load_config(start=SRC)
        )
        result = analyzer.analyze_paths([SRC], root=SRC.parent)
        assert result.unused_noqa == [], [
            f"{e.path}:{e.line} {e.codes or 'bare'}"
            for e in result.unused_noqa
        ]
