"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_screen_defaults(self):
        args = build_parser().parse_args(["screen"])
        assert args.benchmarks == "gzip,mcf"
        assert args.length == 4000
        assert not args.lenth

    def test_simulate_overrides(self):
        args = build_parser().parse_args(
            ["simulate", "gzip", "--set", "rob_entries=64"]
        )
        assert args.set == ["rob_entries=64"]


class TestTablesCommand:
    def test_table2_exact(self, capsys):
        assert main(["tables", "2"]) == 0
        out = capsys.readouterr().out
        assert "+1 +1 +1 -1 +1 -1 -1" in out

    def test_table4_exact(self, capsys):
        assert main(["tables", "4"]) == 0
        out = capsys.readouterr().out
        assert "-225" in out

    def test_table11_from_paper(self, capsys):
        assert main(["tables", "11"]) == 0
        out = capsys.readouterr().out
        assert "gzip, mesa" in out
        assert "vpr-Route, parser, bzip2" in out

    def test_all_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        for marker in ("Table 2", "Table 4", "Table 10", "Table 11",
                       "Plackett and Burman"):
            assert marker in out


class TestSimulateCommand:
    def test_runs_and_prints_stats(self, capsys):
        assert main(["simulate", "gzip", "-n", "1000"]) == 0
        out = capsys.readouterr().out
        assert "IPC=" in out
        assert "instructions=1000" in out

    def test_config_override(self, capsys):
        assert main(["simulate", "gzip", "-n", "1000",
                     "--set", "branch_predictor=perfect"]) == 0
        out = capsys.readouterr().out
        assert "mispredict_rate=0.000%" in out

    def test_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            main(["simulate", "povray"])

    def test_bad_override_field(self):
        with pytest.raises(SystemExit):
            main(["simulate", "gzip", "--set", "warp_factor=9"])

    def test_bad_override_syntax(self):
        with pytest.raises(SystemExit):
            main(["simulate", "gzip", "--set", "justakey"])

    def test_cold_flag(self, capsys):
        assert main(["simulate", "gzip", "-n", "1000", "--cold"]) == 0


class TestCharacterizeCommand:
    def test_report(self, capsys):
        assert main(["characterize", "-b", "gzip", "-n", "1500"]) == 0
        out = capsys.readouterr().out
        assert "gzip: 1500 instructions" in out
        assert "miss-rate curve" in out

    def test_unknown(self):
        with pytest.raises(SystemExit):
            main(["characterize", "-b", "quake3"])


class TestClassifyCommand:
    def test_paper_mode(self, capsys):
        assert main(["classify", "--paper"]) == 0
        out = capsys.readouterr().out
        assert "89.8" in out
        assert "gzip, mesa" in out

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["classify", "-b", "doom"])


class TestExecFlags:
    def test_defaults(self):
        args = build_parser().parse_args(["screen"])
        assert args.retry == 1
        assert args.task_timeout is None
        assert args.on_error == "raise"
        assert args.journal is None
        assert not args.resume

    def test_bad_retry_rejected(self):
        with pytest.raises(SystemExit):
            main(["screen", "--retry", "0"])

    def test_existing_journal_needs_resume(self, tmp_path):
        journal = tmp_path / "screen.journal"
        journal.write_text("")
        with pytest.raises(SystemExit, match="--resume"):
            main(["screen", "--journal", str(journal)])

    def test_resume_needs_journal(self):
        with pytest.raises(SystemExit, match="--journal"):
            main(["screen", "--resume"])


class TestInterruptHandling:
    def _interrupt_run(self, monkeypatch):
        from repro.core import PBExperiment

        def interrupted(self, **kwargs):
            progress = self.progress
            if progress is not None:
                progress(7, 176)
            raise KeyboardInterrupt

        monkeypatch.setattr(PBExperiment, "run", interrupted)

    def test_screen_exits_130_with_summary(self, monkeypatch, capsys):
        self._interrupt_run(monkeypatch)
        assert main(["screen"]) == 130
        err = capsys.readouterr().err
        assert "interrupted after 7 completed cells" in err
        assert "--journal" in err

    def test_screen_summary_names_journal(self, monkeypatch, capsys,
                                          tmp_path):
        self._interrupt_run(monkeypatch)
        journal = str(tmp_path / "screen.journal")
        assert main(["screen", "--journal", journal]) == 130
        err = capsys.readouterr().err
        assert f"--journal {journal} --resume" in err

    def test_classify_exits_130(self, monkeypatch, capsys):
        self._interrupt_run(monkeypatch)
        assert main(["classify"]) == 130
        assert "interrupted" in capsys.readouterr().err

    def test_enhance_exits_130(self, monkeypatch, capsys):
        self._interrupt_run(monkeypatch)
        assert main(["enhance"]) == 130
        assert "interrupted" in capsys.readouterr().err


class TestLintCommand:
    """``repro lint`` — the determinism analysis as a subcommand.

    Exit-status contract: 0 clean, 1 findings, 2 usage error.
    """

    def test_clean_file_exits_0(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("def f(x):\n    return x\n")
        assert main(["lint", str(clean)]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_findings_exit_1(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import os\nx = os.getenv('X')\n")
        assert main(["lint", str(dirty)]) == 1
        assert "REP006" in capsys.readouterr().out

    def test_missing_path_exits_2(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "nope.py")]) == 2

    def test_unknown_rule_exits_2(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert main(["lint", str(clean), "--select", "REP999"]) == 2

    def test_json_format(self, tmp_path, capsys):
        import json

        dirty = tmp_path / "dirty.py"
        dirty.write_text("import time\nt = time.time()\n")
        assert main(["lint", str(dirty), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["rule"] == "REP002"

    def test_baseline_workflow(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import os\nx = os.getenv('X')\n")
        baseline = tmp_path / "baseline.json"
        assert main(["lint", str(dirty),
                     "--write-baseline", str(baseline)]) == 0
        assert main(["lint", str(dirty),
                     "--baseline", str(baseline)]) == 0

    def test_src_repro_is_clean(self):
        """The shipped tree passes its own gate through the CLI."""
        from pathlib import Path

        import repro

        assert main(["lint", str(Path(repro.__file__).parent)]) == 0


@pytest.mark.slow
class TestExperimentCommands:
    def test_screen_small(self, capsys):
        assert main(["screen", "-b", "gzip", "-n", "800",
                     "--lenth", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "Parameter ranks" in out
        assert "significant" in out
        assert "Lenth-significant on gzip" in out
        assert "Half-normal plot: gzip" in out

    def test_enhance_precompute_small(self, capsys):
        assert main(["enhance", "-b", "gzip", "-n", "800"]) == 0
        out = capsys.readouterr().out
        assert "Sum-of-ranks shifts under precompute" in out

    def test_enhance_prefetch_small(self, capsys):
        assert main(["enhance", "-b", "equake", "-n", "800",
                     "--kind", "prefetch"]) == 0
        out = capsys.readouterr().out
        assert "Sum-of-ranks shifts under prefetch" in out

    def test_screen_with_journal_then_resume(self, capsys, tmp_path,
                                             monkeypatch):
        journal = str(tmp_path / "screen.journal")
        assert main(["screen", "-b", "gzip", "-n", "800",
                     "--journal", journal]) == 0
        first = capsys.readouterr().out
        # Resume: every cell comes off the journal, no simulation.
        import repro.exec.engine as engine

        def no_simulate(*args, **kwargs):
            raise AssertionError("resume must not re-simulate")

        monkeypatch.setattr(engine, "simulate", no_simulate)
        assert main(["screen", "-b", "gzip", "-n", "800",
                     "--journal", journal, "--resume"]) == 0
        second = capsys.readouterr().out
        assert second == first


class TestObservabilityFlags:
    """--trace/--metrics/--manifest on screen/classify/enhance."""

    SCREEN = ["screen", "-b", "gzip", "-n", "300"]

    def test_flags_default_off(self):
        args = build_parser().parse_args(["screen"])
        assert args.trace is None
        assert args.metrics is None
        assert args.manifest is None

    def test_screen_writes_all_artifacts(self, tmp_path, capsys):
        import json

        trace = tmp_path / "t.json"
        metrics = tmp_path / "m.jsonl"
        manifest = tmp_path / "run.json"
        assert main(self.SCREEN + [
            "--trace", str(trace), "--metrics", str(metrics),
            "--manifest", str(manifest),
        ]) == 0
        doc = json.loads(trace.read_text())
        assert doc["traceEvents"]
        assert {e["ph"] for e in doc["traceEvents"]} >= {"X", "M"}
        lines = [json.loads(line)
                 for line in metrics.read_text().splitlines()]
        names = {entry["name"] for entry in lines}
        assert {"grid.tasks", "tasks.completed", "sim.cycles"} <= names
        run = json.loads(manifest.read_text())
        assert run["run"]["command"] == "screen"
        assert run["run"]["simulator_version"]
        assert run["run"]["fingerprint"]
        assert run["run"]["settings"]["jobs"] == 1
        assert run["run"]["artifacts"]["trace"] == str(trace)
        assert run["outcome"]["exit_status"] == "completed"
        assert run["outcome"]["metrics"]

    def test_output_identical_with_and_without_telemetry(
            self, tmp_path, capsys):
        assert main(self.SCREEN) == 0
        bare = capsys.readouterr().out
        assert main(self.SCREEN + [
            "--trace", str(tmp_path / "t.json"),
            "--metrics", str(tmp_path / "m.jsonl"),
        ]) == 0
        assert capsys.readouterr().out == bare

    def test_manifest_alone_arms_metrics_only(self, tmp_path, capsys):
        import json

        manifest = tmp_path / "run.json"
        assert main(self.SCREEN + ["--manifest", str(manifest)]) == 0
        run = json.loads(manifest.read_text())
        assert run["outcome"]["metrics"]["tasks.completed"]["value"] \
            == 88

    def test_enhance_manifest(self, tmp_path, capsys):
        import json

        manifest = tmp_path / "run.json"
        assert main([
            "enhance", "-b", "gzip", "-n", "200",
            "--manifest", str(manifest),
        ]) == 0
        run = json.loads(manifest.read_text())
        assert run["run"]["command"] == "enhance"
        # both screens of the study accumulate into one registry
        assert run["outcome"]["metrics"]["tasks.completed"]["value"] \
            == 176

    def test_interrupt_still_writes_manifest(self, monkeypatch,
                                             tmp_path, capsys):
        import json

        from repro.core import PBExperiment

        def interrupted(self, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(PBExperiment, "run", interrupted)
        manifest = tmp_path / "run.json"
        assert main(["screen", "--manifest", str(manifest)]) == 130
        run = json.loads(manifest.read_text())
        assert run["outcome"]["exit_status"] == "interrupted"


class TestGuardFlags:
    def test_audit_default_off(self):
        args = build_parser().parse_args(["screen"])
        assert args.audit is None
        assert args.audit_seed == 0
        assert args.run_dir is None

    def test_bad_audit_fraction_rejected(self):
        with pytest.raises(SystemExit):
            main(["screen", "-b", "gzip", "-n", "600",
                  "--audit", "1.5"])

    def test_screen_with_audit_over_warm_cache(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["screen", "-b", "gzip", "-n", "600",
                     "--cache-dir", cache]) == 0
        first = capsys.readouterr().out
        assert main(["screen", "-b", "gzip", "-n", "600",
                     "--cache-dir", cache, "--audit", "0.2"]) == 0
        second = capsys.readouterr().out
        assert second == first   # clean audit: bit-identical output


class TestVerifyCommand:
    def test_missing_run_dir_inconclusive(self, tmp_path, capsys):
        assert main(["verify", str(tmp_path / "nowhere")]) == 2
        assert "INCONCLUSIVE" in capsys.readouterr().out


class TestJournalCommands:
    def _journal(self, tmp_path):
        from repro.cpu import MachineConfig, simulate
        from repro.exec import Journal
        from repro.workloads import benchmark_trace

        trace = benchmark_trace("gzip", 600)
        stats = simulate(MachineConfig(), trace, warmup=True)
        path = tmp_path / "journal.jsonl"
        with Journal(path) as journal:
            for i in range(3):
                journal.record(f"key-{i}" + "0" * 58, stats)
        return path

    def test_scan_clean_exits_zero(self, tmp_path, capsys):
        path = self._journal(tmp_path)
        assert main(["journal", "scan", str(path)]) == 0
        assert "3 valid" in capsys.readouterr().out

    def test_scan_torn_exits_one(self, tmp_path, capsys):
        path = self._journal(tmp_path)
        path.write_bytes(path.read_bytes()[:-20])
        assert main(["journal", "scan", str(path)]) == 1
        out = capsys.readouterr().out
        assert "torn" in out

    def test_repair_truncates_torn_tail(self, tmp_path, capsys):
        path = self._journal(tmp_path)
        size = path.stat().st_size
        path.write_bytes(path.read_bytes()[:-20])
        assert main(["journal", "repair", str(path)]) == 0
        out = capsys.readouterr().out
        assert "truncated torn tail" in out
        # Idempotent and now clean.
        assert main(["journal", "scan", str(path)]) == 0
        assert path.stat().st_size < size

    def test_repair_reports_midfile_damage_but_keeps_it(self, tmp_path,
                                                        capsys):
        path = self._journal(tmp_path)
        lines = path.read_bytes().splitlines(keepends=True)
        lines[1] = lines[1].replace(b'"sha": "', b'"sha": "f')
        path.write_bytes(b"".join(lines))
        before = path.read_bytes()
        assert main(["journal", "repair", str(path)]) == 0
        out = capsys.readouterr().out
        assert "line 2: checksum" in out
        assert path.read_bytes() == before   # evidence preserved

    def test_missing_journal_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["journal", "scan", str(tmp_path / "absent.jsonl")])


class TestDistFlags:
    def test_defaults(self):
        args = build_parser().parse_args(["screen"])
        assert args.dist is None
        assert args.dist_attach_grace == 10.0
        assert args.dist_heartbeat_grace == 2.5
        assert args.dist_chaos_exit_after is None

    def test_bad_dist_options_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="--dist"):
            main(["screen", "--dist", str(tmp_path / "spool"),
                  "--dist-heartbeat-grace", "0"])

    def test_degraded_dist_screen_completes(self, tmp_path, capsys):
        # A spool nobody attaches to must not break the science: the
        # broker degrades and the screen finishes locally.
        spool = tmp_path / "spool"
        with pytest.warns(RuntimeWarning,
                          match="no distributed worker"):
            assert main(["screen", "-b", "gzip", "-n", "300",
                         "--dist", str(spool),
                         "--dist-attach-grace", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "Parameter ranks" in out


class TestWorkerCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["worker", "spool-dir"])
        assert args.spool == "spool-dir"
        assert args.worker_id is None
        assert args.poll == 0.05
        assert args.lease_ttl == 15.0
        assert args.heartbeat_interval == 0.5
        assert args.max_idle is None
        assert args.max_tasks is None

    def test_idle_worker_exits_zero(self, tmp_path, capsys):
        spool = tmp_path / "spool"
        assert main(["worker", str(spool), "--worker-id", "w-cli",
                     "--poll", "0.01", "--max-idle", "0.05"]) == 0
        err = capsys.readouterr().err
        assert "worker w-cli attaching" in err
        assert "done: 0 task(s) executed" in err
        assert (spool / "hb" / "w-cli.hb").exists()

    def test_drained_spool_stops_worker(self, tmp_path):
        from repro.dist.spool import Spool

        spool = Spool(tmp_path / "spool")
        spool.ensure()
        spool.drain()
        assert main(["worker", str(spool.root)]) == 0
