"""Tests for the distributed worker (repro.dist.worker).

The worker's obligations: execute claimed tickets and seal outcomes
(success and failure alike), keep heartbeating while it computes,
fall silent — without dying — under a ``stall`` fault, quarantine
torn tickets instead of trusting them, and stop promptly on a drain
marker, a task budget, or an idle budget.
"""

import threading
import time

import pytest

from repro.cpu import MachineConfig, SIMULATOR_VERSION
from repro.dist.spool import Spool
from repro.dist.worker import DistWorker
from repro.exec import Fault, FaultInjector, grid_tasks, task_key
from repro.exec import faultinject
from repro.exec.engine import _execute
from repro.workloads import benchmark_trace


@pytest.fixture(scope="module")
def tasks():
    traces = {"gzip": benchmark_trace("gzip", 600)}
    configs = [MachineConfig(),
               MachineConfig().evolve(rob_entries=64)]
    return grid_tasks(configs, traces)


@pytest.fixture()
def spool(tmp_path):
    spool = Spool(tmp_path / "spool")
    spool.ensure()
    return spool


def _publish(spool, tasks, indices=None):
    keys = []
    for i in indices if indices is not None else range(len(tasks)):
        key = task_key(tasks[i], version=SIMULATOR_VERSION)
        spool.publish_task(key, i, 0, tasks[i])
        keys.append(key)
    return keys


class TestExecution:
    def test_drains_spool_and_seals_results(self, spool, tasks):
        keys = _publish(spool, tasks)
        worker = DistWorker(spool, worker_id="w-test",
                            max_tasks=len(tasks), poll=0.01)
        assert worker.run() == len(tasks)
        assert sorted(spool.result_keys()) == sorted(keys)
        for i, key in enumerate(keys):
            record = spool.read_result(key)
            assert record["ok"] is True
            assert record["worker"] == "w-test"
            assert record["index"] == i
            # Sealed payload is the deterministic simulator's output:
            # byte-equal to executing the same cell locally.
            assert record["stats"] == _execute(tasks[i])

    def test_leases_are_released_after_execution(self, spool, tasks):
        _publish(spool, tasks, [0])
        DistWorker(spool, max_tasks=1, poll=0.01).run()
        assert spool.leased_keys() == []
        assert spool.pending_keys() == []

    def test_failure_is_sealed_not_raised(self, spool, tasks):
        keys = _publish(spool, tasks, [0])
        with faultinject.injected(
            FaultInjector({0: Fault("raise", faultinject.ALWAYS)})
        ):
            executed = DistWorker(spool, worker_id="w-err",
                                  max_tasks=1, poll=0.01).run()
        assert executed == 1
        record = spool.read_result(keys[0])
        assert record["ok"] is False
        assert record["error_type"] == "InjectedFault"
        assert "task 0" in record["message"]

    def test_torn_ticket_is_quarantined(self, spool, tasks):
        keys = _publish(spool, tasks, [0])
        path = spool.task_path(keys[0])
        path.write_bytes(path.read_bytes()[:-9])
        executed = DistWorker(spool, max_tasks=1, poll=0.01,
                              max_idle=0.05).run()
        assert executed == 0  # evidence, not work
        assert spool.pending_keys() == []
        assert spool.leased_keys() == []
        assert list(spool.quarantine_dir.iterdir())
        assert spool.result_keys() == []


class TestLiveness:
    def test_heartbeats_flow_while_idle(self, spool):
        worker = DistWorker(spool, worker_id="w-hb", poll=0.01,
                            heartbeat_interval=0.01, max_idle=0.15)
        worker.run()
        assert "w-hb" in spool.read_heartbeats()

    def test_stall_sleep_suppresses_heartbeats(self, spool,
                                               monkeypatch):
        worker = DistWorker(spool, worker_id="w-stall")
        states = []

        def instrumented_sleep(seconds):
            states.append((worker._suppress_hb.is_set(), seconds))

        monkeypatch.setattr(time, "sleep", instrumented_sleep)
        worker._stall_sleep(1.5)
        assert states == [(True, 1.5)]
        assert not worker._suppress_hb.is_set()

    def test_stall_sleep_clears_suppression_on_error(self, spool,
                                                     monkeypatch):
        worker = DistWorker(spool, worker_id="w-stall")

        def failing_sleep(seconds):
            raise RuntimeError("scripted")

        monkeypatch.setattr(time, "sleep", failing_sleep)
        with pytest.raises(RuntimeError):
            worker._stall_sleep(1.0)
        assert not worker._suppress_hb.is_set()

    def test_run_routes_stall_faults_through_worker(self, spool):
        # run() must rebind the active injector's stall clock so a
        # stall fault silences this worker's heartbeats for real.
        injector = FaultInjector({})
        worker = DistWorker(spool, max_idle=0.05, poll=0.01)
        with faultinject.injected(injector):
            worker.run()
        assert injector.stall_sleep == worker._stall_sleep


class TestStopping:
    def test_drain_marker_stops_worker(self, spool, tasks):
        _publish(spool, tasks)
        spool.drain()
        worker = DistWorker(spool, poll=0.01)
        assert worker.run() == 0
        assert spool.pending_keys()  # nothing was claimed

    def test_max_idle_stops_worker(self, spool):
        worker = DistWorker(spool, poll=0.01, max_idle=0.05)
        started = time.monotonic()
        worker.run()
        assert time.monotonic() - started < 5.0

    def test_max_tasks_stops_worker(self, spool, tasks):
        _publish(spool, tasks)
        worker = DistWorker(spool, max_tasks=1, poll=0.01)
        assert worker.run() == 1
        assert len(spool.pending_keys()) == len(tasks) - 1

    def test_heartbeat_thread_is_stopped(self, spool):
        DistWorker(spool, poll=0.01, max_idle=0.05,
                   heartbeat_interval=0.01).run()
        lingering = [t for t in threading.enumerate()
                     if t.name.startswith("heartbeat-")]
        assert lingering == []
