"""Chaos acceptance: the full 88-run screen survives real crashes.

The distributed grid's headline claim, proven end to end through the
real CLI with real OS processes: a broker plus three workers — two of
them scheduled to die mid-task (``os._exit``), one to stall past the
heartbeat grace — and a scripted broker crash partway through the
harvest, must still seal a ``results.json`` **byte-identical** to a
quiet single-host screen of the same workload, and the distributed
run directory must pass ``repro verify`` end to end.

This is the distributed counterpart of
``tests/test_acceptance_cores.py`` and, like it, trades workload size
for depth: the full foldover design, small traces.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.cli import main
from repro.dist.broker import CHAOS_EXIT_CODE
from repro.exec.faultinject import KILL_EXIT_CODE

#: Small but real: 88 configurations x 2 benchmarks = 176 cells.
WORKLOAD = ["-b", "gzip,mcf", "-n", "500"]

#: One fault schedule per worker: whichever worker claims the named
#: cell on its first attempt fires the fault.  Two process kills and
#: one two-second stall (heartbeat silence >> the 0.5 s grace).
WORKER_FAULTS = ["kill:7", "kill:41", "stall:100:1:2.0"]


def _env(fault_spec=None):
    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = os.pathsep.join(
        [src] + [p for p in env.get("PYTHONPATH", "").split(os.pathsep)
                 if p]
    )
    if fault_spec is not None:
        env["REPRO_FAULT_SPEC"] = fault_spec
    else:
        env.pop("REPRO_FAULT_SPEC", None)
    return env


def _spawn_worker(spool, name, fault_spec):
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", str(spool),
         "--worker-id", name, "--poll", "0.02",
         "--heartbeat-interval", "0.05", "--max-idle", "120"],
        env=_env(fault_spec),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )


@pytest.fixture(scope="module")
def reference_run(tmp_path_factory):
    """The sealed oracle: a quiet single-host screen."""
    run_dir = tmp_path_factory.mktemp("dist-reference")
    assert main(["screen", *WORKLOAD, "--run-dir", str(run_dir)]) == 0
    return run_dir


@pytest.fixture(scope="module")
def chaos_run(tmp_path_factory):
    """The run under test: broker + 3 faulty workers + broker crash.

    Broker one is scripted (``--dist-chaos-exit-after``) to die after
    30 harvested results; broker two resumes the same run directory
    and spool and must finish the screen from sealed state alone.
    Streaming is armed throughout (``--run-dir`` streams by default)
    and broker two also profiles, so the byte-identity claim below
    covers the full observability stack.
    """
    run_dir = tmp_path_factory.mktemp("dist-chaos")
    spool = run_dir / "spool"
    profile_dir = run_dir / "profile"
    workers = [_spawn_worker(spool, f"chaos-w{n}", spec)
               for n, spec in enumerate(WORKER_FAULTS)]
    screen = ["screen", *WORKLOAD, "--run-dir", str(run_dir),
              "--dist", str(spool), "--on-error", "skip",
              "--dist-heartbeat-grace", "0.5",
              "--dist-attach-grace", "30"]
    try:
        crashed = subprocess.run(
            [sys.executable, "-m", "repro", *screen,
             "--dist-chaos-exit-after", "30"],
            env=_env(), timeout=600, stdout=subprocess.DEVNULL,
        )
        # Mid-run, post-crash: the fleet view must work against the
        # live spool while the (orphaned) workers are still attached.
        top_mid = subprocess.run(
            [sys.executable, "-m", "repro", "top", str(spool),
             "--once"],
            env=_env(), timeout=120, capture_output=True, text=True,
        )
        # The second broker runs in-process: resumption must need
        # nothing but the on-disk spool + journal.
        resumed = main(screen + ["--profile", str(profile_dir)])
    finally:
        for proc in workers:
            try:
                proc.wait(timeout=180)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
    return {
        "run_dir": run_dir,
        "spool": spool,
        "profile_dir": profile_dir,
        "crashed_rc": crashed.returncode,
        "resumed_rc": resumed,
        "worker_rcs": [proc.returncode for proc in workers],
        "top_mid_rc": top_mid.returncode,
        "top_mid_out": top_mid.stdout,
    }


class TestChaosScript:
    def test_first_broker_crashed_on_schedule(self, chaos_run):
        assert chaos_run["crashed_rc"] == CHAOS_EXIT_CODE

    def test_second_broker_finished_the_screen(self, chaos_run):
        assert chaos_run["resumed_rc"] == 0

    def test_workers_exited_cleanly_or_were_killed(self, chaos_run):
        # A worker either drains normally (0) or dies to its scheduled
        # kill fault (87); nothing may crash any other way.  The stall
        # worker always survives its hang.
        assert all(rc in (0, KILL_EXIT_CODE)
                   for rc in chaos_run["worker_rcs"])
        assert chaos_run["worker_rcs"][2] == 0


class TestBitIdenticalUnderChaos:
    def test_sealed_results_byte_identical(self, reference_run,
                                           chaos_run):
        reference = (reference_run / "results.json").read_bytes()
        chaotic = (chaos_run["run_dir"] / "results.json").read_bytes()
        assert reference == chaotic

    def test_no_cell_was_skipped(self, chaos_run):
        # --on-error skip was armed, but every fault is recoverable:
        # the sealed grid must be complete, not merely consistent.
        results = (chaos_run["run_dir"] / "results.json").read_text()
        assert "null" not in results


class TestFleetObservabilityUnderChaos:
    """The tentpole's acceptance surface: top, export and profiling
    against the same chaotic run that proved byte-identity."""

    def test_top_once_mid_run_saw_the_fleet(self, chaos_run):
        import json

        assert chaos_run["top_mid_rc"] == 0
        doc = json.loads(chaos_run["top_mid_out"])
        workers = {view["worker"] for view in doc["workers"]}
        assert any(name.startswith("chaos-w") for name in workers)

    def test_top_once_post_run_reports_completion(self, chaos_run,
                                                  capsys):
        import json

        assert main(["top", str(chaos_run["run_dir"]),
                     "--once"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["progress"]["done"] == doc["progress"]["total"] \
            == 176
        assert "main" in doc["lanes"]
        assert any(name.startswith("chaos-w")
                   for name in doc["lanes"])

    def test_main_lane_records_both_broker_generations(self,
                                                       chaos_run):
        from repro.obs.stream import scan_stream

        lane = chaos_run["run_dir"] / "stream" / "main.events.jsonl"
        scan = scan_stream(lane)
        assert scan.damage == ()
        assert len(scan.generations()) == 2
        assert scan.records[-1].kind == "stream-close"
        assert scan.records[-1].attrs["status"] == "completed"

    def test_obs_export_prometheus(self, chaos_run, capsys):
        assert main(["obs", "export", str(chaos_run["run_dir"]),
                     "--format", "prometheus"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_tasks_completed_total counter" in out
        assert "repro_progress_done" in out

    def test_obs_export_perfetto(self, chaos_run, tmp_path):
        import json

        out = tmp_path / "trace.json"
        assert main(["obs", "export", str(chaos_run["run_dir"]),
                     "--format", "perfetto", "--out", str(out)]) == 0
        doc = json.loads(out.read_text())
        threads = {e["args"]["name"] for e in doc["traceEvents"]
                   if e.get("name") == "thread_name"}
        assert "main" in threads
        assert any(name.startswith("chaos-w") for name in threads)

    def test_profile_artifacts_captured_and_recorded(self, chaos_run):
        from repro.obs import load_manifest

        captures = sorted(
            p.name for p in chaos_run["profile_dir"].glob("*.pstats"))
        assert captures  # broker two profiled its phases
        doc = load_manifest(chaos_run["run_dir"] / "manifest.json")
        artifacts = doc["run"]["artifacts"]
        assert any(key.startswith("profile.") for key in artifacts)
        assert artifacts["stream"] == str(
            chaos_run["run_dir"] / "stream")


class TestVerifyUnderChaos:
    def test_chaos_run_verifies_end_to_end(self, chaos_run):
        assert main(["verify", str(chaos_run["run_dir"])]) == 0

    def test_explicit_spool_flag(self, chaos_run):
        assert main(["verify", str(chaos_run["run_dir"]),
                     "--spool", str(chaos_run["spool"])]) == 0

    def test_spool_was_drained(self, chaos_run):
        spool = chaos_run["spool"]
        assert (spool / "drain").exists()
        assert not list((spool / "pending").glob("*.task"))
        assert not list((spool / "leased").glob("*.task"))
