"""Tests for the shared spool (repro.dist.spool).

The spool's contract is the whole distributed runtime's safety
argument: every durable record is sealed and published by atomic
rename (readers never see a partial file), claims are exclusive (one
winner per ticket), corruption is quarantined instead of trusted, and
a worker that lost its lease cannot destroy its successor's state.
"""

import multiprocessing

import pytest

from repro.dist.spool import (
    LEASE_KIND,
    RESULT_KIND,
    SPOOL_SCHEMA,
    TASK_KIND,
    Spool,
    pack_obj,
    unpack_obj,
)
from repro.guard.errors import SealCorrupt, SealError

fork_available = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(not fork_available, reason="needs fork")

KEY = "a" * 16


@pytest.fixture()
def spool(tmp_path):
    spool = Spool(tmp_path / "spool", version="test-sim")
    spool.ensure()
    return spool


class TestPackObj:
    def test_roundtrip(self):
        payload = {"cycles": 123, "names": ("gzip", "mcf")}
        assert unpack_obj(pack_obj(payload)) == payload

    def test_corruption_is_seal_corrupt(self):
        with pytest.raises(SealCorrupt) as info:
            unpack_obj("definitely?not!base64")
        assert info.value.reason == "unpicklable"

    def test_truncated_pickle_is_seal_corrupt(self):
        blob = pack_obj({"cycles": 123})
        with pytest.raises(SealCorrupt):
            unpack_obj(blob[: len(blob) // 2])


class TestTickets:
    def test_publish_then_claim_then_read(self, spool):
        spool.publish_task(KEY, 3, 1, {"cell": "payload"})
        assert spool.pending_keys() == [KEY]
        assert spool.claim(KEY)
        assert spool.pending_keys() == []
        assert spool.leased_keys() == [KEY]
        ticket = spool.read_task(KEY)
        assert ticket["index"] == 3
        assert ticket["attempt"] == 1
        assert ticket["task"] == {"cell": "payload"}

    def test_claim_is_exclusive(self, spool):
        spool.publish_task(KEY, 0, 0, None)
        assert spool.claim(KEY)
        assert not spool.claim(KEY)

    def test_claim_missing_key_loses_quietly(self, spool):
        assert not spool.claim("nothing-here")

    @needs_fork
    def test_claim_race_has_one_winner(self, spool):
        spool.publish_task(KEY, 0, 0, None)
        with multiprocessing.get_context("fork").Pool(4) as pool:
            wins = pool.map(spool.claim, [KEY] * 8)
        assert sum(wins) == 1
        assert spool.leased_keys() == [KEY]

    def test_no_temp_file_is_ever_claimable(self, spool):
        # The atomic-write temp marker must go at the END of the name:
        # glob("*.task") matches dot-prefixed files, so a prefix
        # marker would let a worker claim a half-written ticket.
        seen = []
        original = spool._write_atomic

        def spying(path, blob):
            tmp = path.parent / f"{path.name}.tmp-0"
            tmp.write_bytes(b"half-written")
            seen.extend(spool.pending_keys())
            tmp.unlink()
            original(path, blob)

        spool._write_atomic = spying
        spool.publish_task(KEY, 0, 0, None)
        assert seen == []  # in-progress writes are invisible to scans
        assert spool.pending_keys() == [KEY]

    def test_corrupt_ticket_raises_seal_error(self, spool):
        spool.publish_task(KEY, 0, 0, None)
        path = spool.task_path(KEY)
        blob = bytearray(path.read_bytes())
        blob[-2] ^= 0xFF
        path.write_bytes(bytes(blob))
        spool.claim(KEY)
        with pytest.raises(SealError):
            spool.read_task(KEY)

    def test_wrong_simulator_version_rejected(self, spool, tmp_path):
        spool.publish_task(KEY, 0, 0, None)
        other = Spool(spool.root, version="other-sim")
        other.claim(KEY)
        with pytest.raises(SealError):
            other.read_task(KEY)

    def test_unpublish_is_idempotent(self, spool):
        spool.publish_task(KEY, 0, 0, None)
        spool.unpublish(KEY)
        spool.unpublish(KEY)
        assert spool.pending_keys() == []


class TestLeases:
    def test_write_then_read(self, spool):
        deadline = spool.write_lease(KEY, "w1", 2, ttl=30.0)
        lease = spool.read_lease(KEY)
        assert lease["worker"] == "w1"
        assert lease["attempt"] == 2
        assert lease["deadline"] == pytest.approx(deadline)

    def test_missing_lease_is_none(self, spool):
        assert spool.read_lease(KEY) is None

    def test_release_unconditional(self, spool):
        spool.publish_task(KEY, 0, 0, None)
        spool.claim(KEY)
        spool.write_lease(KEY, "w1", 0, ttl=30.0)
        spool.release(KEY)
        assert spool.leased_keys() == []
        assert spool.read_lease(KEY) is None

    def test_release_guards_successor_lease(self, spool):
        # w1 was reclaimed while stalled; w2 now holds the lease.  A
        # late release from w1 must not destroy w2's claim.
        spool.publish_task(KEY, 0, 1, None)
        spool.claim(KEY)
        spool.write_lease(KEY, "w2", 1, ttl=30.0)
        spool.release(KEY, "w1")
        assert spool.leased_keys() == [KEY]
        assert spool.read_lease(KEY)["worker"] == "w2"
        spool.release(KEY, "w2")
        assert spool.leased_keys() == []

    def test_release_leaves_torn_lease_as_evidence(self, spool):
        spool.publish_task(KEY, 0, 0, None)
        spool.claim(KEY)
        spool.lease_path(KEY).write_bytes(b"torn garbage")
        spool.release(KEY, "w1")  # worker-guarded: must not decide
        assert spool.lease_path(KEY).exists()
        spool.release(KEY)  # the broker may release unconditionally
        assert not spool.lease_path(KEY).exists()


class TestResults:
    def test_ok_result_roundtrip(self, spool):
        stats = {"cycles": 424242}
        spool.write_result(KEY, index=5, attempt=1, worker="w9",
                           ok=True, stats=stats)
        assert spool.result_keys() == [KEY]
        record = spool.read_result(KEY)
        assert record["ok"] is True
        assert record["stats"] == stats
        assert record["worker"] == "w9"
        assert record["index"] == 5

    def test_error_result_roundtrip(self, spool):
        spool.write_result(KEY, index=2, attempt=0, worker="w1",
                           ok=False, error_type="InjectedFault",
                           message="injected failure at task 2")
        record = spool.read_result(KEY)
        assert record["ok"] is False
        assert record["stats"] is None
        assert record["error_type"] == "InjectedFault"

    def test_torn_result_raises_seal_error(self, spool):
        spool.write_result(KEY, index=0, attempt=0, worker="w1",
                           ok=True, stats={"cycles": 1})
        path = spool.result_path(KEY)
        path.write_bytes(path.read_bytes()[:-7])
        with pytest.raises(SealError):
            spool.read_result(KEY)

    def test_remove_result_is_idempotent(self, spool):
        spool.write_result(KEY, index=0, attempt=0, worker="w1",
                           ok=True, stats=None)
        spool.remove_result(KEY)
        spool.remove_result(KEY)
        assert spool.result_keys() == []


class TestManifest:
    def test_roundtrip(self, spool):
        spool.write_manifest(n_tasks=176)
        manifest = spool.read_manifest()
        assert manifest["n_tasks"] == 176
        assert manifest["sim"] == "test-sim"
        assert manifest["schema"] == SPOOL_SCHEMA

    def test_missing_manifest_is_none(self, spool):
        assert spool.read_manifest() is None


class TestHeartbeats:
    def test_beat_then_read(self, spool):
        spool.heartbeat("w1")
        spool.heartbeat("w2")
        beats = spool.read_heartbeats()
        assert sorted(beats) == ["w1", "w2"]
        assert all(at > 0 for at in beats.values())

    def test_rebeat_moves_forward(self, spool):
        spool.heartbeat("w1")
        first = spool.read_heartbeats()["w1"]
        spool.heartbeat("w1")
        assert spool.read_heartbeats()["w1"] >= first

    def test_unreadable_beat_is_skipped(self, spool):
        spool.heartbeat("w1")
        (spool.hb_dir / "wbad.hb").write_bytes(b"not-a-float\n")
        assert sorted(spool.read_heartbeats()) == ["w1"]


class TestDrainAndQuarantine:
    def test_drain_cycle(self, spool):
        assert not spool.draining()
        spool.drain()
        assert spool.draining()
        spool.clear_drain()
        assert not spool.draining()

    def test_quarantine_moves_file_aside(self, spool):
        spool.publish_task(KEY, 0, 0, None)
        dest = spool.quarantine(spool.task_path(KEY), "bad-digest")
        assert dest is not None
        assert dest.parent == spool.quarantine_dir
        assert dest.name == f"{KEY}.task.bad-digest"
        assert spool.pending_keys() == []

    def test_quarantine_of_missing_file_is_none(self, spool):
        assert spool.quarantine(spool.task_path(KEY), "gone") is None


class TestKinds:
    def test_record_kinds_are_distinct(self):
        assert len({TASK_KIND, RESULT_KIND, LEASE_KIND}) == 3
