"""Tests for the experiment broker (repro.dist.broker) via run_grid.

The broker is exercised through its only public entry point,
``run_grid(dist=...)``, with workers running as background threads
over the same spool — processes and threads are indistinguishable to
a protocol whose whole state lives in files.  Kill-style crashes need
real processes and live in the chaos acceptance test; here we cover
the coordination logic: completion, bit-identical results, dedup,
worker-error retries, restart adoption, and graceful degradation.
"""

import threading

import pytest

from repro.core import PBExperiment
from repro.cpu import MachineConfig, SIMULATOR_VERSION
from repro.dist import DistOptions, coerce_dist_options
from repro.dist.spool import Spool
from repro.dist.worker import DistWorker
from repro.exec import (
    Fault,
    FaultInjector,
    Journal,
    ResultCache,
    RetryPolicy,
    grid_tasks,
    run_grid,
    task_key,
)
from repro.exec import faultinject
from repro.workloads import benchmark_trace


@pytest.fixture(scope="module")
def traces():
    return {
        "gzip": benchmark_trace("gzip", 600),
        "mcf": benchmark_trace("mcf", 600),
    }


@pytest.fixture(scope="module")
def tasks(traces):
    configs = [
        MachineConfig(),
        MachineConfig().evolve(rob_entries=64, lsq_entries=32),
        MachineConfig().evolve(l2_latency=20),
    ]
    return grid_tasks(configs, traces)


@pytest.fixture(scope="module")
def clean(tasks):
    return [s.cycles for s in run_grid(tasks)]


def cycles(grid):
    return [s.cycles if s is not None else None for s in grid]


def dist_options(tmp_path, **overrides):
    defaults = dict(spool=tmp_path / "spool", poll=0.01,
                    heartbeat_grace=1.0, attach_grace=30.0)
    defaults.update(overrides)
    return DistOptions(**defaults)


def attach_workers(options, count=1, **kwargs):
    """Background workers over the broker's spool, as threads."""
    kwargs.setdefault("poll", 0.01)
    kwargs.setdefault("heartbeat_interval", 0.05)
    threads = []
    for n in range(count):
        worker = DistWorker(options.spool, worker_id=f"w{n}", **kwargs)
        thread = threading.Thread(target=worker.run, daemon=True)
        thread.start()
        threads.append(thread)
    return threads


class TestOptions:
    def test_coerce_accepts_path(self, tmp_path):
        options = coerce_dist_options(tmp_path / "spool")
        assert options.spool == tmp_path / "spool"

    def test_coerce_passes_options_through(self, tmp_path):
        options = dist_options(tmp_path)
        assert coerce_dist_options(options) is options

    def test_nonpositive_knobs_rejected(self, tmp_path):
        for name in ("lease_ttl", "heartbeat_grace", "attach_grace",
                     "poll"):
            with pytest.raises(ValueError, match=name):
                DistOptions(spool=tmp_path, **{name: 0.0})


class TestDistributedRun:
    def test_bit_identical_to_local(self, tmp_path, tasks, clean):
        options = dist_options(tmp_path)
        threads = attach_workers(options)
        grid = run_grid(tasks, dist=options)
        assert cycles(grid) == clean
        for thread in threads:
            thread.join(timeout=10.0)
        # The broker drained its workers and left nothing in flight.
        spool = Spool(options.spool)
        assert spool.draining()
        assert spool.pending_keys() == []
        assert spool.leased_keys() == []

    def test_duplicate_cells_share_one_ticket(self, tmp_path, traces):
        configs = [MachineConfig(), MachineConfig()]  # same cell twice
        duplicated = grid_tasks(configs, traces)
        options = dist_options(tmp_path)
        threads = attach_workers(options)
        grid = run_grid(tasks=duplicated, dist=options)
        for thread in threads:
            thread.join(timeout=10.0)
        half = len(duplicated) // 2
        assert cycles(grid)[:half] == cycles(grid)[half:]

    def test_worker_error_is_retried(self, tmp_path, tasks, clean):
        options = dist_options(tmp_path)
        injector = FaultInjector({2: Fault("raise", 1)})
        with faultinject.injected(injector):
            threads = attach_workers(options)
            grid = run_grid(
                tasks, dist=options, on_error="retry",
                retry=RetryPolicy(max_attempts=3, sleep=lambda s: None),
            )
        assert cycles(grid) == clean
        for thread in threads:
            thread.join(timeout=10.0)

    def test_cache_and_journal_flow_through(self, tmp_path, tasks,
                                            clean):
        options = dist_options(tmp_path)
        cache = ResultCache(tmp_path / "cache")
        journal_path = tmp_path / "grid.journal"
        threads = attach_workers(options)
        with Journal(journal_path) as journal:
            grid = run_grid(tasks, dist=options, cache=cache,
                            journal=journal)
        assert cycles(grid) == clean
        for thread in threads:
            thread.join(timeout=10.0)
        # Every harvested cell went through the ordinary store path.
        assert len(Journal(journal_path)) == len(tasks)
        for task in tasks:
            assert task_key(task) in cache

    def test_restart_adopts_sealed_results(self, tmp_path, tasks,
                                           clean):
        # A broker died after one worker result sealed: the restarted
        # broker must harvest that result instead of re-running it.
        options = dist_options(tmp_path)
        spool = Spool(options.spool, version=SIMULATOR_VERSION)
        spool.ensure()
        from repro.exec.engine import _execute
        key = task_key(tasks[0], version=SIMULATOR_VERSION)
        spool.write_result(key, index=0, attempt=0, worker="w-dead",
                           ok=True, stats=_execute(tasks[0]))
        sentinel = spool.result_path(key).read_bytes()
        threads = attach_workers(options)
        grid = run_grid(tasks, dist=options)
        assert cycles(grid) == clean
        for thread in threads:
            thread.join(timeout=10.0)
        # The adopted cell was never republished: no worker overwrote
        # the dead broker's sealed result before it was harvested.
        assert not spool.result_path(key).exists() \
            or spool.result_path(key).read_bytes() == sentinel


class TestDegradation:
    def test_no_workers_degrades_to_local(self, tmp_path, tasks,
                                          clean):
        options = dist_options(tmp_path, attach_grace=0.2)
        with pytest.warns(RuntimeWarning,
                          match="no distributed worker"):
            grid = run_grid(tasks, dist=options)
        assert cycles(grid) == clean
        spool = Spool(options.spool)
        assert spool.pending_keys() == []  # tickets were withdrawn
        assert spool.draining()

    def test_empty_grid_never_opens_spool(self, tmp_path):
        options = dist_options(tmp_path, attach_grace=0.2)
        assert list(run_grid([], dist=options)) == []
        assert not options.spool.exists()


class TestExperimentIntegration:
    def test_pb_experiment_runs_distributed(self, tmp_path, traces):
        subset = ["Reorder Buffer Entries", "LSQ Entries", "Int ALUs"]
        experiment = PBExperiment(traces, parameter_names=subset)
        local = experiment.run()
        options = dist_options(tmp_path)
        threads = attach_workers(options, count=2)
        distributed = experiment.run(dist=options)
        for thread in threads:
            thread.join(timeout=30.0)
        assert distributed.responses == local.responses
        assert distributed.ranks() == local.ranks()
