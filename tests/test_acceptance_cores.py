"""End-to-end core-equivalence acceptance (ISSUE 6).

The full 88-configuration Plackett-Burman screen, run through the real
CLI on the batched core with the whole guard/obs stack armed — two
workers, result cache, checkpoint journal, re-execution audit, Chrome
trace, manifest — must produce a sealed ``results.json`` that is
**byte-identical** to the one the interpreted reference core seals for
the same workload.  Not statistically close: the same file.

These are the slowest tests in tier 1 (two full screens plus a cached
re-run), so the workload is kept small; the differential sweep in
``tests/cpu/test_batched.py`` covers breadth, this covers depth.
"""

import json

import pytest

from repro.cli import main

#: Small but real: 88 configurations x 2 benchmarks.
WORKLOAD = ["-b", "gzip,mcf", "-n", "500"]


@pytest.fixture(scope="module")
def reference_run(tmp_path_factory):
    """The sealed oracle: a reference-core screen under --run-dir."""
    run_dir = tmp_path_factory.mktemp("screen-reference")
    assert main(["screen", *WORKLOAD, "--core", "reference",
                 "--run-dir", str(run_dir)]) == 0
    return run_dir


@pytest.fixture(scope="module")
def batched_run(tmp_path_factory):
    """The run under test: batched core, jobs=2, cache + journal +
    trace + manifest armed via --run-dir, then a second pass over the
    same run directory with a re-execution audit over the restored
    cells."""
    run_dir = tmp_path_factory.mktemp("screen-batched")
    trace = run_dir / "events.trace.json"
    assert main(["screen", *WORKLOAD, "--core", "batched",
                 "--jobs", "2", "--trace", str(trace),
                 "--run-dir", str(run_dir)]) == 0
    assert main(["screen", *WORKLOAD, "--core", "batched",
                 "--jobs", "2", "--audit", "0.25",
                 "--run-dir", str(run_dir)]) == 0
    return run_dir


class TestBitIdenticalResults:
    def test_sealed_results_byte_identical(self, reference_run,
                                           batched_run):
        reference = (reference_run / "results.json").read_bytes()
        batched = (batched_run / "results.json").read_bytes()
        assert reference == batched

    def test_both_runs_verify_clean(self, reference_run, batched_run):
        for run_dir in (reference_run, batched_run):
            assert main(["verify", str(run_dir)]) == 0

    def test_artifacts_are_armed(self, batched_run):
        assert (batched_run / "journal.jsonl").exists()
        assert (batched_run / "cache").is_dir()
        assert (batched_run / "events.trace.json").exists()
        manifest = json.loads(
            (batched_run / "manifest.json").read_text()
        )
        assert manifest["run"]["settings"]["core"] == "batched"
        assert manifest["run"]["settings"]["jobs"] == 2

    def test_audit_pass_ran_over_restored_cells(self, batched_run):
        """The second screen restored every cell from journal/cache
        and the audit re-executed a sample of them cleanly (a
        violation would have failed the run with AuditMismatch)."""
        metrics = {}
        for line in (batched_run / "metrics.jsonl") \
                .read_text().splitlines():
            record = json.loads(line)
            metrics[record["name"]] = record
        assert metrics["audit.selected"]["value"] > 0
        assert metrics["audit.passed"]["value"] == \
            metrics["audit.selected"]["value"]
        assert metrics["audit.violations"]["value"] == 0

    def test_cache_segregates_core_families(self, reference_run,
                                            batched_run):
        """The two run directories cache under disjoint keys: the
        reference oracle's entries must never be confused with the
        batched cores' (equal *content* is the theorem being tested,
        not an excuse to share storage)."""
        ref_keys = {f.name for f in
                    (reference_run / "cache").glob("*.pkl")}
        bat_keys = {f.name for f in
                    (batched_run / "cache").glob("*.pkl")}
        assert ref_keys and bat_keys
        assert not ref_keys & bat_keys
