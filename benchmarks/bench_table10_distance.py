"""Table 10: Euclidean distances between benchmark rank vectors.

Two regenerations:

* from the paper's own Table 9 data — must match the published matrix
  to one decimal (exact validation of the classification pipeline);
* from our simulator-driven Table 9 analogue — checked for the shape
  results (vpr-Place/twolf and gcc/vortex are nearest neighbours;
  memory-bound outliers are far from everything).
"""

import numpy as np

from repro.core import benchmark_distance, distance_matrix
from repro.core.paper_data import (
    BENCHMARKS,
    TABLE10_DISTANCES,
    paper_table9_ranking,
)
from repro.reporting import render_distance_matrix


def test_table10_exact_from_paper_data(benchmark, capsys):
    ranking = paper_table9_ranking()
    names, dist = benchmark.pedantic(
        distance_matrix, args=(ranking,), rounds=3, iterations=1,
    )
    index = [names.index(b) for b in BENCHMARKS]
    for i in range(13):
        for j in range(13):
            assert abs(dist[index[i], index[j]]
                       - TABLE10_DISTANCES[i][j]) < 0.05
    # The paper's worked example: d(gzip, vpr-Place) = 89.8.
    assert round(benchmark_distance(ranking, "gzip", "vpr-Place"), 1) \
        == 89.8
    with capsys.disabled():
        print("\n" + render_distance_matrix(
            ranking,
            title="Table 10 (recomputed from the paper's Table 9 data)",
        ) + "\n")


def test_table10_from_simulator(benchmark, table9_ranking, capsys):
    names, dist = benchmark.pedantic(
        distance_matrix, args=(table9_ranking,), rounds=1, iterations=1,
    )
    with capsys.disabled():
        print("\n" + render_distance_matrix(
            table9_ranking,
            title="Table 10 analogue (simulator-driven ranks)",
        ) + "\n")

    def d(a, b):
        return dist[names.index(a), names.index(b)]

    # The paper's strongest affinities hold on our substrate.
    others = [d("vpr-Place", x) for x in names
              if x not in ("vpr-Place", "twolf", "mesa")]
    assert d("vpr-Place", "twolf") < min(others)
    assert d("gcc", "vortex") < np.median(dist[dist > 0])
    # Memory-bound outliers sit far from the compute-bound cluster.
    assert d("ammp", "twolf") > d("vpr-Place", "twolf")
