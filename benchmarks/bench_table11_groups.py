"""Table 11: benchmarks grouped by their effect on the processor.

From the paper's own data the groups must match Table 11 exactly.  For
the simulator-driven ranks, the similarity threshold is chosen the way
the paper instructs ("it is left to the experimenter to set the
threshold value"): here, the first quartile of pairwise distances —
and the paper's strongest pairs must cohabit groups.
"""

import numpy as np

from repro.core import (
    PAPER_SIMILARITY_THRESHOLD,
    distance_matrix,
    group_benchmarks,
)
from repro.core.paper_data import TABLE11_GROUPS, paper_table9_ranking
from repro.reporting import render_groups


def test_table11_exact_from_paper_data(benchmark, capsys):
    ranking = paper_table9_ranking()
    groups = benchmark.pedantic(
        group_benchmarks, args=(ranking, PAPER_SIMILARITY_THRESHOLD),
        rounds=3, iterations=1,
    )
    assert [tuple(g) for g in groups] == [tuple(g) for g in TABLE11_GROUPS]
    with capsys.disabled():
        print("\n" + render_groups(
            ranking, PAPER_SIMILARITY_THRESHOLD,
            title="Table 11 (from the paper's Table 9 data)",
        ) + "\n")


def test_table11_from_simulator(benchmark, table9_ranking, capsys):
    names, dist = distance_matrix(table9_ranking)
    pairwise = dist[np.triu_indices(len(names), k=1)]
    threshold = float(np.quantile(pairwise, 0.25))
    groups = benchmark.pedantic(
        group_benchmarks, args=(table9_ranking, threshold),
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print("\n" + render_groups(
            table9_ranking, threshold,
            title="Table 11 analogue (simulator-driven ranks)",
        ) + "\n")

    def same_group(a, b):
        return any(a in g and b in g for g in groups)

    # The paper's two tightest pairs stay together on our substrate.
    assert same_group("vpr-Place", "twolf")
    assert same_group("gcc", "vortex")
    # The grouping is a partition.
    flat = [b for g in groups for b in g]
    assert sorted(flat) == sorted(names)
    # More than one group, fewer than one-per-benchmark: an actual
    # classification, neither degenerate extreme.
    assert 1 < len(groups) < len(names)
