"""Single-simulation throughput: batched cores vs the reference oracle.

The tentpole claim of the batched-core refactor is quantitative —
``core="batched"`` must be at least 10x faster than the interpreted
reference model on a single simulation — and this module is where the
claim is measured and enforced.  Rates are instructions per second of
a full ``simulate()`` call (decode, warmup and stats included, best of
a few repeats so scheduler noise only ever helps).

The 10x floor is asserted for the compiled kernel; on a host with no C
toolchain the assertion is skipped (the pure-Python batched core is a
correctness fallback, not a performance claim).  Either way the
measured rates are printed, so a benchmark session log doubles as a
throughput record alongside the ``BENCH_<label>.json`` manifests.
"""

import time

import pytest

from repro.cpu import MachineConfig, simulate
from repro.workloads import benchmark_trace

#: One simulation's trace length: long enough that per-call fixed
#: costs (machine build, decode) do not dominate either core.
LENGTH = 20_000

#: The tentpole acceptance floor for the compiled kernel.
SPEEDUP_FLOOR = 10.0


def _native_available() -> bool:
    from repro.cpu.native import _load

    return _load() is not None


def _rate(core: str, trace, repeats: int = 3) -> float:
    """Best observed instructions/second for one core."""
    best = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        stats = simulate(MachineConfig(), trace, warmup=True,
                         core=core)
        elapsed = time.perf_counter() - start
        best = max(best, stats.instructions / elapsed)
    return best


@pytest.fixture(scope="module")
def throughput_trace():
    return benchmark_trace("gzip", LENGTH)


def test_batched_is_10x_reference(throughput_trace):
    if not _native_available():
        pytest.skip("no C toolchain: the 10x floor is a compiled-"
                    "kernel claim; batched-python is a fallback")
    reference = _rate("reference", throughput_trace)
    batched = _rate("batched", throughput_trace)
    speedup = batched / reference
    print(f"\nreference: {reference:,.0f} instr/s   "
          f"batched: {batched:,.0f} instr/s   "
          f"speedup: {speedup:.1f}x")
    assert speedup >= SPEEDUP_FLOOR, (
        f"batched core is only {speedup:.1f}x the reference "
        f"({batched:,.0f} vs {reference:,.0f} instr/s); the "
        f"acceptance floor is {SPEEDUP_FLOOR}x"
    )


def test_batched_python_not_slower_than_reference(throughput_trace):
    """The no-toolchain fallback must never cost more than the model
    it replaces (it also carries the decode cost the native kernel
    shares)."""
    reference = _rate("reference", throughput_trace)
    fallback = _rate("batched-python", throughput_trace)
    print(f"\nreference: {reference:,.0f} instr/s   "
          f"batched-python: {fallback:,.0f} instr/s   "
          f"ratio: {fallback / reference:.2f}x")
    assert fallback >= 0.8 * reference
