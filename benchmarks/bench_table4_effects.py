"""Table 4: the worked effect computation for X = 8.

The responses (1, 9, 74, 28, 3, 6, 112, 84) must yield effects
(-23, -67, -137, 129, -105, -225, 73), with F, C, D most significant.
"""

import numpy as np

from repro.doe import compute_effects, pb_design
from repro.reporting import render_effects

RESPONSES = [1, 9, 74, 28, 3, 6, 112, 84]
PAPER_EFFECTS = dict(zip("ABCDEFG", [-23, -67, -137, 129, -105, -225, 73]))


def test_table4_regeneration(benchmark, capsys):
    design = pb_design(7, factor_names=list("ABCDEFG"))
    table = benchmark.pedantic(compute_effects, args=(design, RESPONSES),
                               rounds=3, iterations=1)
    with capsys.disabled():
        print("\n" + render_effects(
            table, title="Table 4: example analysis (effects)"
        ) + "\n")
    for factor, expected in PAPER_EFFECTS.items():
        assert round(table.effect(factor)) == expected
    assert table.top(3) == ["F", "C", "D"]


def test_bench_effect_computation(benchmark):
    design = pb_design(43, foldover=True)
    rng = np.random.default_rng(0)
    responses = rng.normal(1e6, 1e5, size=design.n_runs)
    table = benchmark(compute_effects, design, responses)
    assert len(table.effects) == 43
