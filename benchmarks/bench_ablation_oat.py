"""Ablation: the one-at-a-time pitfall the paper opens with (§2.1).

Two demonstrations on the live simulator:

1. *Masking by a constant parameter*: a one-at-a-time sensitivity
   sweep is run twice — once holding the unlisted parameters at
   sane defaults, once with a single badly-chosen constant (a
   2-entry LSQ).  The apparent importance ordering changes: the
   bottleneck constant masks the parameters under test.
2. *Cost*: the sweep uses N+1 simulations vs the PB foldover's 2X,
   but yields one point estimate per factor with no interaction
   protection.
"""

from repro.core import PBExperiment, rank_parameters_from_result
from repro.cpu import MachineConfig, config_from_levels, simulate
from repro.cpu.params import parameter_spec
from repro.doe import design_cost, oat_design, oat_effects
from repro.workloads import benchmark_trace

FACTORS = [
    "Reorder Buffer Entries", "L2 Cache Latency", "BPred Type",
    "Int ALUs", "Memory Latency First", "L1 D-Cache Size",
]


def oat_ranking(trace, base: MachineConfig):
    """Run a one-at-a-time sweep and rank factors by |single diff|."""
    design = oat_design(factor_names=FACTORS, baseline=-1)
    responses = []
    for levels in design.runs():
        cfg = config_from_levels(levels, base)
        responses.append(float(simulate(cfg, trace, warmup=True).cycles))
    effects = oat_effects(design, responses)
    return sorted(effects, key=lambda f: -abs(effects[f])), effects


def test_ablation_one_at_a_time(benchmark, capsys):
    trace = benchmark_trace("gzip", 6000)
    sane = MachineConfig()
    # The pitfall: one constant parameter set to an extreme value.
    strangled = MachineConfig(lsq_entries=2)

    def run_all():
        return oat_ranking(trace, sane), oat_ranking(trace, strangled)

    (order_sane, fx_sane), (order_bad, fx_bad) = benchmark.pedantic(
        run_all, rounds=1, iterations=1,
    )

    with capsys.disabled():
        print("\none-at-a-time importance order, sane constants:")
        for f in order_sane:
            print(f"  {f:30s} {fx_sane[f]:+10.0f}")
        print("one-at-a-time importance order, 2-entry LSQ held "
              "constant:")
        for f in order_bad:
            print(f"  {f:30s} {fx_bad[f]:+10.0f}")
        print(f"\nsimulations: one-at-a-time "
              f"{design_cost('one-at-a-time', len(FACTORS))}, "
              f"PB foldover "
              f"{design_cost('plackett-burman-foldover', len(FACTORS))}")

    # The badly-chosen constant changes the apparent ordering — the
    # masking effect Section 2.1 warns about.
    assert order_sane != order_bad
    # Effects measured under the bottleneck constant are damped for at
    # least one factor (the bottleneck dominates).
    damped = [f for f in FACTORS
              if abs(fx_bad[f]) < 0.7 * abs(fx_sane[f])]
    assert damped, "expected the LSQ bottleneck to mask some factor"
