"""Shared fixtures for the table-regeneration benchmarks.

The expensive artifacts — the foldover PB experiment over all 41
parameters on all 13 benchmarks, with and without the instruction
precomputation enhancement — are computed once per session and shared
by every table's benchmark module.

Scale is controlled by ``REPRO_BENCH_SCALE`` (simulated instructions
per million of the paper's Table 5 dynamic counts; default 5.0, i.e.
gcc ~= 20k instructions).  Larger scales sharpen the rankings at the
cost of runtime.

The experiments run through :mod:`repro.exec`:

* ``--jobs N`` (or ``REPRO_BENCH_JOBS``) fans the simulation grid
  over N worker processes — results are identical at any value;
* ``--cache-dir DIR`` (or ``REPRO_BENCH_CACHE``) keeps an on-disk
  result cache, so repeated benchmark sessions at the same scale skip
  the simulations entirely and time only the analysis under study;
* ``--manifest-dir DIR`` (or ``REPRO_BENCH_MANIFEST_DIR``) writes one
  ``BENCH_<label>.json`` run manifest and ``BENCH_<label>.metrics.jsonl``
  metrics dump per session experiment (see :mod:`repro.obs`), so a
  perf-trajectory directory accumulates comparable provenance records
  across sessions;
* ``--core NAME`` (or ``REPRO_BENCH_CORE``) picks the simulator core
  (default ``batched``); every core is field-exact equivalent, so the
  deterministic ``sim.*`` totals in the emitted manifests are
  core-independent — which is what lets ``repro bench check`` compare
  a fresh batched-core session against the committed reference-core
  baselines under ``benchmarks/baselines/`` bit-exact.
"""

import os

import pytest

from repro.core import PBExperiment, rank_parameters_from_result
from repro.cpu import build_precompute_table
from repro.exec import ResultCache
from repro.workloads import BENCHMARK_NAMES, benchmark_trace, default_length

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "5.0"))


def pytest_addoption(parser):
    group = parser.getgroup("repro", "repro execution engine")
    group.addoption(
        "--jobs", type=int,
        default=int(os.environ.get("REPRO_BENCH_JOBS", "1")),
        help="worker processes for the simulation grids (default 1)",
    )
    group.addoption(
        "--cache-dir",
        default=os.environ.get("REPRO_BENCH_CACHE"),
        help="on-disk simulation result cache directory",
    )
    group.addoption(
        "--manifest-dir",
        default=os.environ.get("REPRO_BENCH_MANIFEST_DIR"),
        help="write BENCH_<label>.json run manifests (plus metrics "
             "JSONL) for each session experiment into this directory",
    )
    group.addoption(
        "--core",
        default=os.environ.get("REPRO_BENCH_CORE", "batched"),
        help="simulator core for the session experiments "
             "(default batched; all cores are field-exact equivalent)",
    )


@pytest.fixture(scope="session")
def exec_jobs(request):
    return request.config.getoption("--jobs")


@pytest.fixture(scope="session")
def exec_cache(request):
    cache_dir = request.config.getoption("--cache-dir")
    return ResultCache(cache_dir) if cache_dir else None


@pytest.fixture(scope="session")
def manifest_dir(request):
    return request.config.getoption("--manifest-dir")


@pytest.fixture(scope="session")
def exec_core(request):
    return request.config.getoption("--core")


def _instrumented_run(label, manifest_dir, jobs, cache_dir, run,
                      core="batched"):
    """Run one session experiment, optionally emitting observability
    artifacts (``BENCH_<label>.json`` + ``BENCH_<label>.metrics.jsonl``)
    into ``manifest_dir``.

    ``run`` is a callable taking the (possibly ``None``) telemetry
    bundle and returning the experiment result.  Telemetry is strictly
    observational, so results are identical either way.
    """
    if not manifest_dir:
        return run(None)
    from pathlib import Path

    from repro.obs import (
        RunManifest,
        Telemetry,
        config_fingerprint,
        write_metrics_jsonl,
    )

    telemetry = Telemetry.armed(trace=False, simulator_counters=True)
    settings = {"jobs": jobs, "cache_dir": cache_dir, "scale": SCALE,
                "core": core}
    manifest = RunManifest(
        command=f"bench:{label}",
        fingerprint=config_fingerprint({
            "label": label, "scale": SCALE,
            "benchmarks": list(BENCHMARK_NAMES),
        }),
        settings=settings,
        workload={"benchmarks": len(BENCHMARK_NAMES), "scale": SCALE},
        fault_spec=os.environ.get("REPRO_FAULT_SPEC"),
    )
    out = Path(manifest_dir)
    result = run(telemetry)
    metrics_path = out / f"BENCH_{label}.metrics.jsonl"
    write_metrics_jsonl(telemetry.metrics, metrics_path)
    manifest.artifacts["metrics"] = str(metrics_path)
    manifest.finalize(metrics=telemetry.snapshot())
    manifest.write(out / f"BENCH_{label}.json")
    return result


@pytest.fixture(scope="session")
def suite_traces():
    """The 13 benchmark traces at Table 5-proportional lengths."""
    return {
        name: benchmark_trace(name, default_length(name, SCALE))
        for name in BENCHMARK_NAMES
    }


@pytest.fixture(scope="session")
def table9_experiment(suite_traces, exec_jobs, exec_cache, exec_core,
                      request, manifest_dir):
    """The 88-configuration base-machine experiment (paper Table 9)."""
    return _instrumented_run(
        "table9", manifest_dir, exec_jobs,
        request.config.getoption("--cache-dir"),
        lambda telemetry: PBExperiment(
            suite_traces, core=exec_core,
        ).run(jobs=exec_jobs, cache=exec_cache, telemetry=telemetry),
        core=exec_core,
    )


@pytest.fixture(scope="session")
def table9_ranking(table9_experiment):
    return rank_parameters_from_result(table9_experiment)


@pytest.fixture(scope="session")
def precompute_tables(suite_traces):
    """Per-benchmark 128-entry precomputation tables (Section 4.3)."""
    return {
        name: build_precompute_table(trace, 128)
        for name, trace in suite_traces.items()
    }


@pytest.fixture(scope="session")
def table12_experiment(suite_traces, precompute_tables, exec_jobs,
                       exec_cache, exec_core, request, manifest_dir):
    """The enhanced-machine experiment (paper Table 12)."""
    return _instrumented_run(
        "table12", manifest_dir, exec_jobs,
        request.config.getoption("--cache-dir"),
        lambda telemetry: PBExperiment(
            suite_traces, precompute_tables=precompute_tables,
            core=exec_core,
        ).run(jobs=exec_jobs, cache=exec_cache, telemetry=telemetry),
        core=exec_core,
    )


@pytest.fixture(scope="session")
def table12_ranking(table12_experiment):
    return rank_parameters_from_result(table12_experiment)
