"""Shared fixtures for the table-regeneration benchmarks.

The expensive artifacts — the foldover PB experiment over all 41
parameters on all 13 benchmarks, with and without the instruction
precomputation enhancement — are computed once per session and shared
by every table's benchmark module.

Scale is controlled by ``REPRO_BENCH_SCALE`` (simulated instructions
per million of the paper's Table 5 dynamic counts; default 5.0, i.e.
gcc ~= 20k instructions).  Larger scales sharpen the rankings at the
cost of runtime.

The experiments run through :mod:`repro.exec`:

* ``--jobs N`` (or ``REPRO_BENCH_JOBS``) fans the simulation grid
  over N worker processes — results are identical at any value;
* ``--cache-dir DIR`` (or ``REPRO_BENCH_CACHE``) keeps an on-disk
  result cache, so repeated benchmark sessions at the same scale skip
  the simulations entirely and time only the analysis under study.
"""

import os

import pytest

from repro.core import PBExperiment, rank_parameters_from_result
from repro.cpu import build_precompute_table
from repro.exec import ResultCache
from repro.workloads import BENCHMARK_NAMES, benchmark_trace, default_length

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "5.0"))


def pytest_addoption(parser):
    group = parser.getgroup("repro", "repro execution engine")
    group.addoption(
        "--jobs", type=int,
        default=int(os.environ.get("REPRO_BENCH_JOBS", "1")),
        help="worker processes for the simulation grids (default 1)",
    )
    group.addoption(
        "--cache-dir",
        default=os.environ.get("REPRO_BENCH_CACHE"),
        help="on-disk simulation result cache directory",
    )


@pytest.fixture(scope="session")
def exec_jobs(request):
    return request.config.getoption("--jobs")


@pytest.fixture(scope="session")
def exec_cache(request):
    cache_dir = request.config.getoption("--cache-dir")
    return ResultCache(cache_dir) if cache_dir else None


@pytest.fixture(scope="session")
def suite_traces():
    """The 13 benchmark traces at Table 5-proportional lengths."""
    return {
        name: benchmark_trace(name, default_length(name, SCALE))
        for name in BENCHMARK_NAMES
    }


@pytest.fixture(scope="session")
def table9_experiment(suite_traces, exec_jobs, exec_cache):
    """The 88-configuration base-machine experiment (paper Table 9)."""
    return PBExperiment(suite_traces).run(jobs=exec_jobs, cache=exec_cache)


@pytest.fixture(scope="session")
def table9_ranking(table9_experiment):
    return rank_parameters_from_result(table9_experiment)


@pytest.fixture(scope="session")
def precompute_tables(suite_traces):
    """Per-benchmark 128-entry precomputation tables (Section 4.3)."""
    return {
        name: build_precompute_table(trace, 128)
        for name, trace in suite_traces.items()
    }


@pytest.fixture(scope="session")
def table12_experiment(suite_traces, precompute_tables, exec_jobs,
                       exec_cache):
    """The enhanced-machine experiment (paper Table 12)."""
    return PBExperiment(
        suite_traces, precompute_tables=precompute_tables
    ).run(jobs=exec_jobs, cache=exec_cache)


@pytest.fixture(scope="session")
def table12_ranking(table12_experiment):
    return rank_parameters_from_result(table12_experiment)
