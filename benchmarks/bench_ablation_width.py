"""Ablation: the fixed issue width (§3).

The paper fixes decode/issue/commit width at 4 and asserts that
"fixing the issue width to a constant value does not affect the
conclusions drawn from these simulations in any way".  This ablation
re-runs a subset screen at widths 2, 4 and 8 and checks that the
conclusions — which parameters dominate — indeed survive.
"""

from repro.core import (
    PBExperiment,
    compare_rankings,
    rank_parameters_from_result,
)
from repro.cpu import MachineConfig
from repro.workloads import benchmark_trace

FACTORS = [
    "Reorder Buffer Entries", "L2 Cache Latency", "BPred Type",
    "Int ALUs", "Memory Latency First", "L1 D-Cache Size",
    "LSQ Entries",
]
BENCHES = ("gzip", "mcf")


def test_ablation_issue_width(benchmark, capsys):
    traces = {b: benchmark_trace(b, 4000) for b in BENCHES}

    def run_widths():
        rankings = {}
        for width in (2, 4, 8):
            result = PBExperiment(
                traces, parameter_names=FACTORS,
                base_config=MachineConfig(width=width),
            ).run()
            rankings[width] = rank_parameters_from_result(result)
        return rankings

    rankings = benchmark.pedantic(run_widths, rounds=1, iterations=1)

    with capsys.disabled():
        print()
        for width, ranking in rankings.items():
            print(f"width {width}: {list(ranking.factors[:4])}")
        for width in (2, 8):
            cmp = compare_rankings(rankings[width], rankings[4])
            print(f"width {width} vs 4 Spearman: "
                  f"{cmp.overall_spearman:+.3f}")

    # The headline conclusion survives every width.
    for width, ranking in rankings.items():
        assert list(ranking.factors).index(
            "Reorder Buffer Entries") <= 2, width
    # The orderings correlate strongly across widths.
    for width in (2, 8):
        cmp = compare_rankings(rankings[width], rankings[4])
        assert cmp.overall_spearman > 0.6, width
