"""Table 9: Plackett-Burman ranks for all 41 parameters x 13 benchmarks.

The session fixture runs the full 88-configuration experiment on the
simulator; this module regenerates the paper's table layout from it,
checks the *shape* results the paper reports, and benchmarks the
analysis step (effects -> ranks -> sums).

Shape expectations (not absolute ranks — our substrate is a synthetic
simulator, not the authors' SimpleScalar/SPEC testbed):

* the reorder buffer and L2 latency are the dominant parameters
  suite-wide, as in the paper's headline conclusion;
* the dummy factors are never significant;
* branch prediction is irrelevant for the FP/memory-bound codes
  (art, ammp) but significant for the integer codes;
* the memory parameters matter most for the memory-bound codes.
"""

from repro.core import rank_parameters_from_result
from repro.reporting import render_ranking


def test_table9_regeneration(benchmark, table9_experiment, capsys):
    ranking = benchmark.pedantic(
        rank_parameters_from_result, args=(table9_experiment,),
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print("\n" + render_ranking(
            ranking,
            title="Table 9 analogue: parameter ranks, base machine",
        ) + "\n")
        significant = ranking.significant_factors()
        print("significant parameters:", significant, "\n")

    factors = list(ranking.factors)

    # ROB and L2 latency dominate, as in the paper.
    assert factors.index("Reorder Buffer Entries") <= 2
    assert factors.index("L2 Cache Latency") <= 2

    # Dummy factors are insignificant (bottom half of the table).
    assert factors.index("Dummy Factor #1") >= 22
    assert factors.index("Dummy Factor #2") >= 22

    # ROB is a top parameter for every single benchmark.
    for bench in ranking.benchmarks:
        assert ranking.rank_of("Reorder Buffer Entries", bench) <= 6

    # Branch prediction: irrelevant for the regular FP codes,
    # important for the branchy integer codes (paper: art 27, ammp 4*
    # -> our profiles make both regular; gzip 2, parser 4).
    assert ranking.rank_of("BPred Type", "art") > 15
    assert ranking.rank_of("BPred Type", "parser") <= 8
    assert ranking.rank_of("BPred Type", "gzip") <= 10

    # Memory latency matters far more for the memory-bound codes.
    assert ranking.rank_of("Memory Latency First", "art") < \
        ranking.rank_of("Memory Latency First", "gzip")
    assert ranking.rank_of("Memory Latency First", "mcf") < \
        ranking.rank_of("Memory Latency First", "vortex")

    # The I-cache stressing codes rank L1 I-cache size at the top.
    for bench in ("vpr-Place", "mesa", "twolf"):
        assert ranking.rank_of("L1 I-Cache Size", bench) <= 6
    # ... and the tiny-loop codes do not.
    assert ranking.rank_of("L1 I-Cache Size", "mcf") > 20
