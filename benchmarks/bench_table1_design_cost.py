"""Table 1: simulations vs level of detail for three design families.

Regenerates the paper's comparison (one-at-a-time: N+1, PB foldover:
~2N, full factorial: 2^N) and benchmarks design construction.
"""

from repro.doe import design_cost, oat_design, pb_design
from repro.reporting import render_design_cost_table

N = 40  # the paper's Section 2.1 example ("more than 1 trillion")


def test_table1_regeneration(benchmark, capsys):
    table = benchmark.pedantic(render_design_cost_table, args=(N,),
                               rounds=3, iterations=1)
    with capsys.disabled():
        print("\n" + table + "\n")
    assert design_cost("one-at-a-time", N) == 41
    assert design_cost("plackett-burman-foldover", N) == 88
    assert design_cost("full-factorial", N) == 2 ** 40 > 10 ** 12


def test_bench_oat_construction(benchmark):
    design = benchmark(oat_design, N)
    assert design.n_runs == N + 1


def test_bench_pb_construction(benchmark):
    design = benchmark(pb_design, N, foldover=True)
    assert design.n_runs == 88
