"""Table 3: the foldover X = 8 design (original + sign-reversed mirror)."""

import numpy as np

from repro.doe import pb_design
from repro.reporting import render_design_matrix


def test_table3_regeneration(benchmark, capsys):
    base = pb_design(7)
    folded = benchmark.pedantic(base.foldover, rounds=3, iterations=1)
    with capsys.disabled():
        print("\n" + render_design_matrix(
            folded, title="Table 3: PB design matrix for X = 8 with foldover"
        ) + "\n")
    assert folded.n_runs == 16
    assert np.array_equal(folded.matrix[:8], base.matrix)
    assert np.array_equal(folded.matrix[8:], -base.matrix)
    assert folded.is_balanced() and folded.is_orthogonal()


def test_bench_foldover(benchmark):
    base = pb_design(43)
    folded = benchmark(base.foldover)
    assert folded.n_runs == 88
