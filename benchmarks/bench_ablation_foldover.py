"""Ablation: how much does the foldover actually buy? (§2.2)

The paper recommends the foldover design (2X runs) "to protect the
results from the effects of some of the most important interactions".
This ablation runs the same screening experiment with and without
foldover on a subset of factors/benchmarks and reports how the rank
orderings differ — plus the §2.2 claim that interactions among
significant parameters stay small relative to the mains.
"""

from repro.core import (
    PBExperiment,
    compare_rankings,
    interactions_smaller_than_mains,
    rank_parameters_from_result,
)
from repro.workloads import benchmark_trace

FACTORS = [
    "Reorder Buffer Entries", "L2 Cache Latency", "BPred Type",
    "Int ALUs", "L1 D-Cache Size", "Memory Latency First",
    "LSQ Entries", "L1 I-Cache Size", "Memory Bandwidth",
    "BPred Misprediction Penalty", "L1 D-Cache Latency",
]
BENCHES = ("gzip", "mcf", "twolf")


def test_ablation_foldover(benchmark, capsys):
    traces = {b: benchmark_trace(b, 4000) for b in BENCHES}

    def run_both():
        folded = PBExperiment(traces, parameter_names=FACTORS).run()
        plain = PBExperiment(traces, parameter_names=FACTORS,
                             foldover=False).run()
        return folded, plain

    folded, plain = benchmark.pedantic(run_both, rounds=1, iterations=1)
    ranking_folded = rank_parameters_from_result(folded)
    ranking_plain = rank_parameters_from_result(plain)
    cmp = compare_rankings(ranking_plain, ranking_folded)

    with capsys.disabled():
        print(f"\nfoldover runs: {folded.design.n_runs}, "
              f"basic runs: {plain.design.n_runs}")
        print("rank agreement basic-vs-foldover:")
        print(cmp.summary())
        print("\ntop-5 foldover:", list(ranking_folded.factors[:5]))
        print("top-5 basic:   ", list(ranking_plain.factors[:5]))

    # The basic design costs half the simulations ...
    assert plain.design.n_runs * 2 == folded.design.n_runs
    # ... and broadly agrees (interactions are modest here), which is
    # the *precondition* the paper cites for trusting PB screens.
    assert cmp.overall_spearman > 0.5
    # The §2.2 claim on the foldover result: interactions among the top
    # parameters do not exceed the main effects.
    top = ranking_folded.top(3)
    assert interactions_smaller_than_mains(folded, top, tolerance=1.0)
