"""Ablation: are the conclusions trace-seed artifacts?

The paper could not replicate its workloads; our generator can.  This
ablation regenerates each benchmark from independent seeds, runs the
screening design on every replicate, and reports per-effect t-tests:
the headline parameters must be statistically significant, and the
dummy-like parameters must not be, across workload randomness.
"""

from repro.core import (
    rank_parameters_from_result,
    replicated_suite,
    run_replicated,
)

FACTORS = [
    "Reorder Buffer Entries", "L2 Cache Latency", "BPred Type",
    "Int ALUs", "L1 D-Cache Size", "Memory Latency First",
    "I-TLB Size", "Return Address Stack Entries", "Memory Ports",
    "BTB Associativity", "LSQ Entries",
]
BENCHES = ("gzip", "mcf", "twolf")
REPLICATES = 3


def test_ablation_seed_stability(benchmark, capsys):
    traces = replicated_suite(BENCHES, 3000, REPLICATES)

    result = benchmark.pedantic(
        run_replicated, args=(traces,),
        kwargs={"parameter_names": FACTORS},
        rounds=1, iterations=1,
    )

    with capsys.disabled():
        print()
        for bench in BENCHES:
            print(result.table(bench, top=6))
            print()

    # The headline parameters survive workload randomness ...
    for bench in BENCHES:
        significant = set(result.significant_factors(bench))
        assert "Reorder Buffer Entries" in significant, bench

    # ... and the mean ranking across replicates tells the same story
    # as any single-seed experiment.
    ranking = rank_parameters_from_result(result.mean_result)
    assert "Reorder Buffer Entries" in ranking.top(3)

    # Replication makes even tiny consistent effects *statistically*
    # significant; what must hold is that the minor parameters stay
    # practically negligible next to the reorder buffer.
    for bench in BENCHES:
        inference = result.inference[bench]
        rob = abs(inference["Reorder Buffer Entries"].mean_effect)
        for minor in ("Return Address Stack Entries", "I-TLB Size"):
            assert abs(inference[minor].mean_effect) < 0.25 * rob, \
                (bench, minor)
