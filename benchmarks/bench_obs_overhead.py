"""Streaming overhead: live telemetry must be nearly free.

The event log (:mod:`repro.obs.stream`) promises to be *strictly
observational* — and cheap enough to leave armed by default on every
``--run-dir`` run.  This module is where the cost claim is measured
and enforced: the same grid runs bare and with the full default
streaming surface armed (tracer + metrics registry + simulator
counters fanned out to an :class:`~repro.obs.EventWriter` lane), and
the streamed median may exceed the bare median by at most
:data:`OVERHEAD_CEILING` plus a small absolute slack for scheduler
noise on sub-second grids.

With ``--manifest-dir`` the streamed session also emits
``BENCH_obs_overhead.json`` (+ metrics JSONL); the committed baseline
under ``benchmarks/baselines/`` then lets ``repro bench check`` hold
two lines at once: the deterministic ``sim.*`` totals of a streamed
run never drift (streaming cannot touch the science), and the wall
time of the streamed grid stays inside the usual trajectory
tolerance.
"""

import os
import statistics
import time
from pathlib import Path

import pytest

from repro.cpu import MachineConfig
from repro.exec import SimTask, run_grid
from repro.obs import EventWriter, Telemetry
from repro.workloads import benchmark_trace

BENCH, LENGTH = "gzip", 20_000
TASKS = 48
REPS = 3

#: Streamed median / bare median may not exceed this ratio...
OVERHEAD_CEILING = 1.05
#: ... plus this absolute allowance (scheduler noise floor; the grids
#: here are deliberately small so the benchmark stays in tier-CI
#: budgets).
SLACK_SECONDS = 0.25


@pytest.fixture(scope="module")
def grid_tasks():
    trace = benchmark_trace(BENCH, LENGTH)
    return [SimTask(config=MachineConfig(), trace=trace)
            for _ in range(TASKS)]


def _median(samples):
    return statistics.median(samples)


def _run_reps(grid_tasks, make_telemetry):
    """Median wall time over REPS runs; returns (median, last run)."""
    samples, last_result, last_telemetry = [], None, None
    for rep in range(REPS):
        telemetry = make_telemetry(rep)
        start = time.perf_counter()
        result = run_grid(grid_tasks, telemetry=telemetry)
        samples.append(time.perf_counter() - start)
        if telemetry is not None:
            telemetry.close()
        last_result, last_telemetry = result, telemetry
    return _median(samples), last_result, last_telemetry


def test_streaming_overhead_under_ceiling(grid_tasks, tmp_path,
                                          manifest_dir):
    bare_median, bare_result, _ = _run_reps(
        grid_tasks, lambda rep: None)

    def streamed(rep):
        lane = tmp_path / f"rep{rep}" / "main.events.jsonl"
        return Telemetry.armed(
            simulator_counters=True,
            stream=EventWriter(lane, lane="main"),
        )

    manifest = _begin_manifest(manifest_dir)
    streamed_median, streamed_result, telemetry = _run_reps(
        grid_tasks, streamed)
    if manifest is not None:
        _emit_manifest(manifest, manifest_dir, telemetry)

    # Streaming is observational: the science is bit-identical.
    assert [s.cycles for s in streamed_result] \
        == [s.cycles for s in bare_result]

    # The armed lane really recorded the run.
    lane = tmp_path / f"rep{REPS - 1}" / "main.events.jsonl"
    assert lane.stat().st_size > 0

    budget = bare_median * OVERHEAD_CEILING + SLACK_SECONDS
    print(f"\nbare: {bare_median:.3f}s   "
          f"streamed: {streamed_median:.3f}s   "
          f"ratio: {streamed_median / bare_median:.3f}x   "
          f"budget: {budget:.3f}s")
    assert streamed_median <= budget, (
        f"streaming overhead {streamed_median:.3f}s exceeds "
        f"{bare_median:.3f}s * {OVERHEAD_CEILING} + {SLACK_SECONDS}s"
    )


def _begin_manifest(manifest_dir):
    if not manifest_dir:
        return None
    from repro.obs import RunManifest, config_fingerprint

    return RunManifest(
        command="bench:obs_overhead",
        fingerprint=config_fingerprint({
            "label": "obs_overhead", "bench": BENCH,
            "length": LENGTH, "tasks": TASKS,
        }),
        settings={"reps": REPS, "length": LENGTH, "tasks": TASKS},
        workload={"bench": BENCH, "length": LENGTH, "tasks": TASKS},
        fault_spec=os.environ.get("REPRO_FAULT_SPEC"),
    )


def _emit_manifest(manifest, manifest_dir, telemetry):
    from repro.obs import write_metrics_jsonl

    out = Path(manifest_dir)
    metrics_path = out / "BENCH_obs_overhead.metrics.jsonl"
    write_metrics_jsonl(telemetry.metrics, metrics_path)
    manifest.artifacts["metrics"] = str(metrics_path)
    manifest.finalize(metrics=telemetry.snapshot())
    manifest.write(out / "BENCH_obs_overhead.json")
