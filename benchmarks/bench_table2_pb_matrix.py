"""Table 2: the X = 8 Plackett-Burman design matrix.

Must match the paper cell-for-cell; benchmarks matrix construction for
the paper's X = 44 experiment size.
"""

from repro.doe import pb_design, pb_matrix
from repro.reporting import render_design_matrix

PAPER_TABLE2 = [
    [+1, +1, +1, -1, +1, -1, -1],
    [-1, +1, +1, +1, -1, +1, -1],
    [-1, -1, +1, +1, +1, -1, +1],
    [+1, -1, -1, +1, +1, +1, -1],
    [-1, +1, -1, -1, +1, +1, +1],
    [+1, -1, +1, -1, -1, +1, +1],
    [+1, +1, -1, +1, -1, -1, +1],
    [-1, -1, -1, -1, -1, -1, -1],
]


def test_table2_regeneration(benchmark, capsys):
    design = benchmark.pedantic(pb_design, args=(7,),
                                rounds=3, iterations=1)
    with capsys.disabled():
        print("\n" + render_design_matrix(
            design, title="Table 2: PB design matrix for X = 8"
        ) + "\n")
    assert design.matrix.tolist() == PAPER_TABLE2


def test_bench_x44_construction(benchmark):
    matrix = benchmark(pb_matrix, 44)
    assert matrix.shape == (44, 43)
