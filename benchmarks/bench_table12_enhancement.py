"""Table 12: PB ranks with the instruction-precomputation enhancement.

The session fixtures run the 88-configuration experiment twice (base
machine and 128-entry precomputation table); this module regenerates
the before/after comparison of Section 4.3 and checks the paper's two
conclusions on our substrate:

1. the *set* of dominant parameters is unchanged by the enhancement;
2. the Int-ALU parameter loses significance (its sum of ranks rises),
   because precomputed instructions bypass the integer ALUs.
"""

from repro.core import EnhancementAnalysis
from repro.reporting import render_enhancement, render_ranking


def test_table12_regeneration(benchmark, table9_ranking, table12_ranking,
                              table9_experiment, table12_experiment,
                              capsys):
    analysis = benchmark.pedantic(
        EnhancementAnalysis, args=(table9_ranking, table12_ranking),
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print("\n" + render_ranking(
            table12_ranking,
            title="Table 12 analogue: ranks with instruction "
                  "precomputation",
        ) + "\n")
        print(render_enhancement(
            analysis, top=12,
            title="Before/after sum-of-ranks (biggest movers)",
        ) + "\n")
        shift = analysis.biggest_shift_among_significant()
        print(f"biggest significant shift: {shift.factor} "
              f"{shift.sum_before} -> {shift.sum_after}\n")

    # Precomputation speeds up every benchmark (sanity).
    for bench in table9_experiment.benchmarks:
        assert (sum(table12_experiment.responses[bench])
                < sum(table9_experiment.responses[bench])), bench

    shifts = {s.factor: s.shift for s in analysis.shifts()}

    # Conclusion 2: Int ALUs become less significant.
    assert shifts["Int ALUs"] > 0

    # The dominant parameters stay dominant (conclusion 1, slightly
    # relaxed: the top of the table is stable even if mid-table order
    # shuffles).
    before_top = set(table9_ranking.top(6))
    after_top = set(table12_ranking.top(10))
    assert before_top <= after_top

    # ROB and L2 latency remain the headline parameters.
    assert list(table12_ranking.factors).index(
        "Reorder Buffer Entries") <= 2
    assert list(table12_ranking.factors).index("L2 Cache Latency") <= 3
