"""Tables 6-8: the 41 processor parameters and their PB values.

Regenerates the parameter list with low/high values, checks the
linkage rules (LSQ as a fraction of ROB, derived TLB/memory values),
and benchmarks design-row -> machine translation.
"""

from repro.core import build_design
from repro.cpu import (
    KIB,
    PARAMETER_SPACE,
    config_from_levels,
    parameter_spec,
)
from repro.reporting import render_parameter_values


def test_tables678_regeneration(benchmark, capsys):
    table = benchmark.pedantic(render_parameter_values,
                               rounds=3, iterations=1)
    with capsys.disabled():
        print("\n" + table + "\n")
    assert len(PARAMETER_SPACE) == 41
    # Spot checks straight out of the paper's tables.
    assert parameter_spec("Instruction Fetch Queue Entries").low == 4
    assert parameter_spec("Int Divide Latency").low == 80
    assert parameter_spec("L2 Cache Size").high == 8192 * KIB


def test_linkage_rules_hold_for_all_rows(benchmark):
    design = build_design()
    benchmark.pedantic(lambda: list(design.runs()), rounds=1, iterations=1)
    for levels in design.runs():
        cfg = config_from_levels(levels)
        assert cfg.lsq_entries <= cfg.rob_entries
        assert cfg.dtlb_page_size == cfg.itlb_page_size
        assert cfg.dtlb_latency == cfg.itlb_latency
        assert cfg.int_div_interval == cfg.int_div_latency
        assert cfg.mem_latency_following == max(
            1, round(0.02 * cfg.mem_latency_first)
        )


def test_bench_config_translation(benchmark):
    design = build_design()
    rows = list(design.runs())

    def translate_all():
        return [config_from_levels(levels) for levels in rows]

    configs = benchmark(translate_all)
    assert len(configs) == 88
