"""Shim for environments without the `wheel` package.

`pip install -e .` needs bdist_wheel; in offline environments without
the wheel package, `python setup.py develop` performs the equivalent
editable install using only setuptools.  All project metadata lives in
pyproject.toml.
"""
from setuptools import setup

setup()
